(* Tests for the Nona compiler stack: IR semantics, dependence analysis,
   SCC formation, DOANY/PS-DSWP applicability, and — most importantly —
   semantics preservation of the parallelized, dynamically reconfigured
   executions against the sequential interpreter. *)

open Parcae_ir
open Parcae_pdg
open Parcae_sim

(* Engine/value types come from the platform dispatch layer (the runtime's
   own types); [Machine]/[Power]/etc. remain from [Parcae_sim] above. *)
module Engine = Parcae_platform.Engine
module Chan = Parcae_platform.Chan
module Lock = Parcae_platform.Lock
module Barrier = Parcae_platform.Barrier
open Parcae_nona
module R = Parcae_runtime

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let machine = Machine.xeon_x7460

(* ------------------------- interpreter ------------------------- *)

let test_interp_counted () =
  (* sum of i for i in 0..9 plus array writes *)
  let b = Builder.create "t" in
  Builder.array b "out" (Array.make 10 0);
  let i = Builder.induction b ~from:0 ~step:1 in
  let s = Builder.reduce b Instr.Add ~init:(Instr.Const 0) (Instr.Reg i) in
  Builder.store b "out" (Instr.Reg i) (Instr.Reg i);
  Builder.live_out b s;
  let loop = Builder.finish ~trip:(Loop.Count 10) b in
  let r = Interp.run loop in
  check_int "iterations" 10 r.Interp.iterations;
  check_int "sum" 45 (List.assoc s r.Interp.live_out);
  Alcotest.(check (array int)) "array" (Array.init 10 (fun i -> i)) (List.assoc "out" r.Interp.arrays)

let test_interp_while () =
  let loop = Kernels.stringsearch ~n:50 () in
  let r = Interp.run loop in
  check_int "stops at terminator" 50 r.Interp.iterations;
  check_int "emitted one per record" 50 (List.length r.Interp.externals.Externals.obs_emitted)

let test_interp_profile () =
  let loop = Kernels.blackscholes ~n:100 () in
  let profile = Array.make (Array.length (Loop.nodes loop)) 0.0 in
  ignore (Interp.run ~profile loop);
  let total = Array.fold_left ( +. ) 0.0 profile in
  check_bool "work dominates profile" true (total > 100.0 *. 80_000.0)

(* ------------------------- PDG ------------------------- *)

let test_pdg_induction_detected () =
  let loop = Kernels.blackscholes ~n:10 () in
  let pdg = Pdg.build loop in
  check_int "one induction" 1 (List.length pdg.Pdg.inductions);
  check_int "no reductions" 0 (List.length pdg.Pdg.reductions);
  check_bool "DOANY applicable" true (Doany.applicable pdg)

let test_pdg_reductions_detected () =
  let loop = Kernels.kmeans ~n:10 () in
  let pdg = Pdg.build loop in
  check_int "two reductions" 2 (List.length pdg.Pdg.reductions);
  check_bool "DOANY applicable" true (Doany.applicable pdg)

let test_pdg_recurrence_inhibits () =
  let loop = Kernels.recurrence ~n:10 () in
  let pdg = Pdg.build loop in
  check_bool "DOANY rejected" false (Doany.applicable pdg);
  check_bool "has inhibitors to report" true (Doany.inhibitors pdg <> [])

let test_pdg_memory_conflict () =
  (* store a[i] ; load a[i] in the same iteration: intra dep only. *)
  let b = Builder.create "mem" in
  Builder.array b "a" (Array.make 16 0);
  let i = Builder.induction b ~from:0 ~step:1 in
  Builder.store b "a" (Instr.Reg i) (Instr.Reg i);
  let x = Builder.load b "a" (Instr.Reg i) in
  Builder.store b "a" (Instr.Reg i) (Instr.Reg x);
  let loop = Builder.finish ~trip:(Loop.Count 16) b in
  let pdg = Pdg.build loop in
  check_bool "still DOANY applicable (same-iteration conflicts)" true (Doany.applicable pdg)

let test_pdg_cross_iteration_memory () =
  (* store a[i+1]; load a[i]: a carried dependence with distance 1. *)
  let b = Builder.create "mem2" in
  Builder.array b "a" (Array.make 34 0);
  let i = Builder.induction b ~from:0 ~step:1 in
  let i1 = Builder.add b (Instr.Reg i) (Instr.Const 1) in
  Builder.store b "a" (Instr.Reg i1) (Instr.Reg i);
  let x = Builder.load b "a" (Instr.Reg i) in
  Builder.store b "a" (Instr.Reg i) (Instr.Reg x) |> ignore;
  let loop = Builder.finish ~trip:(Loop.Count 32) b in
  let pdg = Pdg.build loop in
  check_bool "DOANY rejected" false (Doany.applicable pdg);
  check_bool "carried mem dep present" true
    (List.exists (fun d -> d.Dep.kind = Dep.Mem_data && d.Dep.carried) pdg.Pdg.deps)

(* ------------------------- SCC / partition ------------------------- *)

let test_scc_crc32 () =
  let loop = Kernels.crc32 ~n:10 () in
  let pdg = Pdg.build loop in
  let scc = Scc.build pdg in
  (* induction scc (seq), crc recurrence (seq), plus parallel singletons *)
  let seqs = Array.to_list scc.Scc.comps |> List.filter (fun c -> not c.Scc.parallel) in
  check_bool "at least two sequential SCCs" true (List.length seqs >= 2)

let test_partition_invariant () =
  List.iter
    (fun k ->
      let loop = k.Kernels.make () in
      let pdg = Pdg.build loop in
      let scc = Scc.build pdg in
      match Psdswp.partition scc with
      | None -> ()
      | Some stages ->
          check_bool
            (k.Kernels.k_name ^ ": invariant 4.3.1 holds")
            true
            (Psdswp.check_invariant pdg stages))
    Kernels.suite

let test_kernel_expectations () =
  List.iter
    (fun k ->
      let c = Compiler.compile (k.Kernels.make ()) in
      check_bool
        (Printf.sprintf "%s: doany %b" k.Kernels.k_name k.Kernels.exp_doany)
        k.Kernels.exp_doany (c.Compiler.doany <> None);
      check_bool
        (Printf.sprintf "%s: psdswp %b" k.Kernels.k_name k.Kernels.exp_psdswp)
        k.Kernels.exp_psdswp
        (c.Compiler.pipeline <> None))
    Kernels.suite

(* ------------------------- execution ------------------------- *)

(* Run a compiled kernel under a fixed scheme/DoP and check semantics. *)
let run_scheme ?(n_override = None) kernel scheme_name dop =
  ignore n_override;
  let loop = kernel () in
  let c = Compiler.compile loop in
  let eng = Engine.create machine in
  let h = Compiler.launch ~budget:24 eng c in
  let cfg = Compiler.config_for h ~dop scheme_name in
  let _ =
    Engine.spawn eng ~name:"driver" (fun () ->
        R.Executor.reconfigure h.Compiler.region cfg;
        R.Executor.await h.Compiler.region)
  in
  ignore (Engine.run eng);
  check_bool
    (Printf.sprintf "%s under %s dop %d is done" loop.Loop.name scheme_name dop)
    true
    (R.Region.is_done h.Compiler.region);
  check_bool
    (Printf.sprintf "%s under %s dop %d preserves semantics" loop.Loop.name scheme_name dop)
    true
    (Compiler.preserves_semantics h);
  (h, Engine.time eng)

let test_seq_execution_all_kernels () =
  List.iter
    (fun k ->
      let small () =
        (* shrink kernels for the sequential run *)
        match k.Kernels.k_name with
        | "blackscholes" -> Kernels.blackscholes ~n:120 ()
        | "crc32" -> Kernels.crc32 ~n:120 ()
        | "url" -> Kernels.url ~n:120 ()
        | "kmeans" -> Kernels.kmeans ~n:120 ()
        | "histogram" -> Kernels.histogram ~n:120 ()
        | "montecarlo" -> Kernels.montecarlo ~n:120 ()
        | "stringsearch" -> Kernels.stringsearch ~n:120 ()
        | _ -> Kernels.recurrence ~n:120 ()
      in
      ignore (run_scheme small "SEQ" 1))
    Kernels.suite

let test_doany_execution () =
  ignore (run_scheme (fun () -> Kernels.blackscholes ~n:400 ()) "DOANY" 8);
  ignore (run_scheme (fun () -> Kernels.kmeans ~n:400 ()) "DOANY" 8);
  ignore (run_scheme (fun () -> Kernels.url ~n:400 ()) "DOANY" 6);
  ignore (run_scheme (fun () -> Kernels.montecarlo ~n:400 ()) "DOANY" 8)

let test_psdswp_execution () =
  ignore (run_scheme (fun () -> Kernels.crc32 ~n:400 ()) "PS-DSWP" 8);
  ignore (run_scheme (fun () -> Kernels.histogram ~n:400 ()) "PS-DSWP" 8);
  ignore (run_scheme (fun () -> Kernels.stringsearch ~n:400 ()) "PS-DSWP" 8);
  ignore (run_scheme (fun () -> Kernels.blackscholes ~n:400 ()) "PS-DSWP" 6)

let test_doany_speedup () =
  let _, t_seq = run_scheme (fun () -> Kernels.blackscholes ~n:400 ()) "SEQ" 1 in
  let _, t_par = run_scheme (fun () -> Kernels.blackscholes ~n:400 ()) "DOANY" 8 in
  let speedup = float_of_int t_seq /. float_of_int t_par in
  check_bool (Printf.sprintf "DOANY speedup %.2f > 6" speedup) true (speedup > 6.0)

let test_psdswp_speedup () =
  let _, t_seq = run_scheme (fun () -> Kernels.crc32 ~n:400 ()) "SEQ" 1 in
  let _, t_par = run_scheme (fun () -> Kernels.crc32 ~n:400 ()) "PS-DSWP" 8 in
  let speedup = float_of_int t_seq /. float_of_int t_par in
  check_bool (Printf.sprintf "PS-DSWP speedup %.2f > 4" speedup) true (speedup > 4.0)

let test_reconfiguration_mid_run () =
  (* Switch schemes and DoPs repeatedly while the loop runs; semantics must
     be preserved and every iteration executed exactly once. *)
  let loop = Kernels.blackscholes ~n:1200 () in
  let c = Compiler.compile loop in
  let eng = Engine.create machine in
  let h = Compiler.launch ~budget:24 eng c in
  let _ =
    Engine.spawn eng ~name:"driver" (fun () ->
        let region = h.Compiler.region in
        R.Executor.reconfigure region (Compiler.config_for h ~dop:4 "DOANY");
        Engine.sleep 3_000_000;
        R.Executor.reconfigure region (Compiler.config_for h ~dop:6 "PS-DSWP");
        Engine.sleep 3_000_000;
        R.Executor.reconfigure region (Compiler.config_for h "SEQ");
        Engine.sleep 2_000_000;
        R.Executor.reconfigure region (Compiler.config_for h ~dop:10 "PS-DSWP");
        Engine.sleep 3_000_000;
        R.Executor.reconfigure region (Compiler.config_for h ~dop:12 "DOANY");
        R.Executor.await region)
  in
  ignore (Engine.run eng);
  check_bool "done" true (R.Region.is_done h.Compiler.region);
  check_int "every iteration exactly once" 1200 h.Compiler.rs.Flex.next_iter;
  check_bool "semantics preserved across reconfigurations" true (Compiler.preserves_semantics h)

let test_psdswp_dop_changes () =
  (* Repeated DoP-only changes on a pipeline with a sequential consumer:
     the epoch-based channel arbitration must never reorder iterations
     (the Section 7.2.2 hazard) — stringsearch's ordered emit catches any
     reordering. *)
  let loop = Kernels.stringsearch ~n:800 () in
  let c = Compiler.compile loop in
  let eng = Engine.create machine in
  let h = Compiler.launch ~budget:24 eng c in
  let _ =
    Engine.spawn eng ~name:"driver" (fun () ->
        let region = h.Compiler.region in
        R.Executor.reconfigure region (Compiler.config_for h ~dop:3 "PS-DSWP");
        let dops = [ 5; 2; 8; 4; 6 ] in
        List.iter
          (fun d ->
            Engine.sleep 2_000_000;
            if not (R.Region.is_done region) then
              R.Executor.reconfigure region (Compiler.config_for h ~dop:d "PS-DSWP"))
          dops;
        R.Executor.await region)
  in
  ignore (Engine.run eng);
  check_bool "done" true (R.Region.is_done h.Compiler.region);
  check_bool "ordered output preserved under DoP changes" true (Compiler.preserves_semantics h)

let test_flags_unoptimized_still_correct () =
  (* Chapter 7 optimizations off: slower but still correct. *)
  let flags =
    { Flex.hoist_state = false; privatize_reductions = false; heap_op_ns = 40 }
  in
  let loop = Kernels.kmeans ~n:300 () in
  let c = Compiler.compile loop in
  let eng = Engine.create machine in
  let h = Compiler.launch ~flags ~budget:24 eng c in
  let _ =
    Engine.spawn eng ~name:"driver" (fun () ->
        R.Executor.reconfigure h.Compiler.region (Compiler.config_for h ~dop:8 "DOANY");
        R.Executor.await h.Compiler.region)
  in
  ignore (Engine.run eng);
  check_bool "semantics preserved without optimizations" true (Compiler.preserves_semantics h)

let suite =
  [
    Alcotest.test_case "interp: counted loop" `Quick test_interp_counted;
    Alcotest.test_case "interp: while loop" `Quick test_interp_while;
    Alcotest.test_case "interp: profiling" `Quick test_interp_profile;
    Alcotest.test_case "pdg: induction" `Quick test_pdg_induction_detected;
    Alcotest.test_case "pdg: reductions" `Quick test_pdg_reductions_detected;
    Alcotest.test_case "pdg: recurrence inhibits" `Quick test_pdg_recurrence_inhibits;
    Alcotest.test_case "pdg: same-iteration memory" `Quick test_pdg_memory_conflict;
    Alcotest.test_case "pdg: cross-iteration memory" `Quick test_pdg_cross_iteration_memory;
    Alcotest.test_case "scc: crc32 shape" `Quick test_scc_crc32;
    Alcotest.test_case "psdswp: invariant 4.3.1" `Quick test_partition_invariant;
    Alcotest.test_case "compiler: kernel expectations" `Quick test_kernel_expectations;
    Alcotest.test_case "exec: SEQ all kernels" `Quick test_seq_execution_all_kernels;
    Alcotest.test_case "exec: DOANY kernels" `Quick test_doany_execution;
    Alcotest.test_case "exec: PS-DSWP kernels" `Quick test_psdswp_execution;
    Alcotest.test_case "exec: DOANY speedup" `Quick test_doany_speedup;
    Alcotest.test_case "exec: PS-DSWP speedup" `Quick test_psdswp_speedup;
    Alcotest.test_case "exec: reconfigure mid-run" `Quick test_reconfiguration_mid_run;
    Alcotest.test_case "exec: PS-DSWP DoP changes preserve order" `Quick test_psdswp_dop_changes;
    Alcotest.test_case "exec: unoptimized flags correct" `Quick test_flags_unoptimized_still_correct;
  ]
