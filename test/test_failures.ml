(* Failure-injection tests: hostile environments that stress the
   adaptation machinery — platform cores fluctuating mid-run, thread
   budgets thrashing, bursty arrival patterns, and load generators that
   stall.  In every case the system must terminate and preserve
   semantics. *)

open Parcae_ir
open Parcae_sim

(* Engine/value types come from the platform dispatch layer (the runtime's
   own types); [Machine]/[Power]/etc. remain from [Parcae_sim] above. *)
module Engine = Parcae_platform.Engine
module Chan = Parcae_platform.Chan
module Lock = Parcae_platform.Lock
module Barrier = Parcae_platform.Barrier
open Parcae_core
open Parcae_nona
open Parcae_workloads
module R = Parcae_runtime
module Mech = Parcae_mechanisms
module Rng = Parcae_util.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let machine = Machine.xeon_x7460

let test_core_fluctuation_under_controller () =
  (* The platform's online core count oscillates 24 -> 6 -> 16 -> 2 -> 24
     while a controller-managed kernel runs.  (This is below the runtime's
     knowledge: the OS silently takes cores away, as when co-scheduled
     processes compete.)  The run must finish correctly. *)
  let c = Compiler.compile (Kernels.kmeans ~n:60_000 ()) in
  let eng = Engine.create machine in
  let h = Compiler.launch ~budget:24 eng c in
  let params =
    { R.Controller.default_params with R.Controller.nseq = 8; npar_factor = 8; monitor_ns = 20_000_000 }
  in
  ignore (R.Controller.spawn eng (R.Controller.create ~params h.Compiler.region));
  let _ =
    Engine.spawn eng ~name:"os" (fun () ->
        List.iter
          (fun cores ->
            Engine.sleep 300_000_000;
            Engine.set_online_cores eng cores)
          [ 6; 16; 2; 24; 8; 24 ])
  in
  ignore (Engine.run ~until:600_000_000_000 eng);
  check_bool "done" true (R.Region.is_done h.Compiler.region);
  check_bool "semantics" true (Compiler.preserves_semantics h)

let test_budget_thrash () =
  (* The daemon-style budget flaps rapidly; the controller must keep
     recalibrating without wedging. *)
  let c = Compiler.compile (Kernels.blackscholes ~n:120_000 ()) in
  let eng = Engine.create machine in
  let h = Compiler.launch ~budget:24 eng c in
  let params =
    { R.Controller.default_params with R.Controller.nseq = 8; npar_factor = 8; monitor_ns = 10_000_000 }
  in
  let ctl = R.Controller.create ~params h.Compiler.region in
  ignore (R.Controller.spawn eng ctl);
  let _ =
    Engine.spawn eng ~name:"thrash" (fun () ->
        let budgets = [ 4; 20; 2; 16; 6; 24; 3; 24 ] in
        List.iter
          (fun b ->
            Engine.sleep 100_000_000;
            if not (R.Region.is_done h.Compiler.region) then begin
              R.Region.set_budget h.Compiler.region b;
              R.Controller.notify_resource_change ctl
            end)
          budgets)
  in
  ignore (Engine.run ~until:600_000_000_000 eng);
  check_bool "done" true (R.Region.is_done h.Compiler.region);
  check_bool "semantics" true (Compiler.preserves_semantics h);
  check_int "all iterations" 120_000 h.Compiler.rs.Flex.next_iter

let test_bursty_load_on_server () =
  (* Square-wave arrivals: silence, then a burst far above capacity,
     repeatedly, under WQ-Linear.  Every submitted request must complete. *)
  let eng = Engine.create machine in
  let app = Transcode.make ~budget:24 eng in
  let region =
    R.Executor.launch ~budget:24 ~name:"bursty" eng app.App.schemes
      ~on_pause:app.App.on_pause ~on_reset:app.App.on_reset (App.config app "inner-max")
  in
  let mechanism =
    Mech.Wq_linear.nested ~load:app.App.wq_load ~dpmin:1 ~dpmax:app.App.dpmax ~qmax:20.0
      ~make_config:(Option.get app.App.inner_dop_config) ()
  in
  ignore
    (R.Morta.spawn
       ~stop:(fun () -> R.Region.is_done region)
       ~period_ns:500_000_000 ~mechanism eng region);
  let rng = Rng.create 5 in
  let submitted = ref 0 in
  ignore
    (Engine.spawn eng ~name:"bursts" (fun () ->
         for _burst = 1 to 4 do
           (* 40 requests in 0.25 s (far above the ~14/s capacity)... *)
           for _ = 1 to 40 do
             Engine.sleep (int_of_float (Rng.exponential rng ~rate:160.0 *. 1e9));
             let req =
               Request.create ~id:!submitted ~arrival_ns:(Engine.now ())
                 ~scale:(Float.max 0.5 (Rng.gaussian rng ~mu:1.0 ~sigma:0.08))
             in
             incr submitted;
             Metrics.note_submit app.App.metrics;
             Pipeline.send app.App.queue req
           done;
           (* ... then three seconds of silence. *)
           Engine.sleep 3_000_000_000
         done;
         Pipeline.inject_eos app.App.queue));
  ignore (Engine.run ~until:120_000_000_000 eng);
  check_bool "done" true (R.Region.is_done region);
  check_int "every burst request served" !submitted (Metrics.completed app.App.metrics)

let test_online_cores_zero_then_restore () =
  (* A brief total outage: online cores drop to 0 (everything stalls), then
     restore; execution must pick up where it left off. *)
  let eng = Engine.create machine in
  let count = ref 0 in
  let t =
    Task.parallel ~name:"work" (fun ctx ->
        match ctx.Task.get_status () with
        | Task_status.Paused -> Task_status.Paused
        | _ ->
            if !count >= 2000 then Task_status.Complete
            else begin
              incr count;
              Engine.compute 10_000;
              Task_status.Iterating
            end)
  in
  let pd = Task.descriptor ~name:"w" [ t ] in
  let r = R.Executor.launch ~budget:8 ~name:"w" eng [ pd ] (Config.make [ Config.task 8 ]) in
  let progress_during_outage = ref (-1) in
  let _ =
    Engine.spawn eng ~name:"outage" (fun () ->
        Engine.sleep 1_000_000;
        let before = !count in
        Engine.set_online_cores eng 0;
        Engine.sleep 5_000_000;
        progress_during_outage := !count - before;
        Engine.set_online_cores eng 24)
  in
  ignore (Engine.run ~until:60_000_000_000 eng);
  check_bool "done after restore" true (R.Region.is_done r);
  check_int "all iterations" 2000 !count;
  (* At most the already-running slices finished during the outage. *)
  check_bool "outage froze progress" true (!progress_during_outage <= 24)

let test_generator_stall_and_resume () =
  (* The load generator stalls for a long stretch mid-stream; blocked
     master lanes must survive mechanism reconfigurations meanwhile. *)
  let eng = Engine.create machine in
  let app = Swaptions.make ~budget:24 eng in
  let region =
    R.Executor.launch ~budget:24 ~name:"stall" eng app.App.schemes
      ~on_pause:app.App.on_pause ~on_reset:app.App.on_reset (App.config app "inner-max")
  in
  let mechanism =
    Mech.Wqt_h.make ~load:app.App.wq_load ~threshold:8.0 ~non:2 ~noff:2
      ~light:(App.config app "inner-max") ~heavy:(App.config app "outer-only") ()
  in
  ignore
    (R.Morta.spawn
       ~stop:(fun () -> R.Region.is_done region)
       ~period_ns:300_000_000 ~mechanism eng region);
  let rng = Rng.create 11 in
  ignore
    (Engine.spawn eng ~name:"gen" (fun () ->
         let send i =
           let req =
             Request.create ~id:i ~arrival_ns:(Engine.now ())
               ~scale:(Float.max 0.5 (Rng.gaussian rng ~mu:1.0 ~sigma:0.05))
           in
           Metrics.note_submit app.App.metrics;
           Pipeline.send app.App.queue req
         in
         for i = 1 to 20 do
           Engine.sleep 100_000_000;
           send i
         done;
         (* stall: nothing for 8 seconds — several mechanism periods *)
         Engine.sleep 8_000_000_000;
         for i = 21 to 40 do
           Engine.sleep 100_000_000;
           send i
         done;
         Pipeline.inject_eos app.App.queue));
  ignore (Engine.run ~until:120_000_000_000 eng);
  check_bool "done" true (R.Region.is_done region);
  check_int "all requests served" 40 (Metrics.completed app.App.metrics)

let suite =
  [
    Alcotest.test_case "failure: core fluctuation" `Quick test_core_fluctuation_under_controller;
    Alcotest.test_case "failure: budget thrash" `Quick test_budget_thrash;
    Alcotest.test_case "failure: bursty load" `Quick test_bursty_load_on_server;
    Alcotest.test_case "failure: total core outage" `Quick test_online_cores_zero_then_restore;
    Alcotest.test_case "failure: generator stall" `Quick test_generator_stall_and_resume;
  ]
