(* Request-span tracing and the tail-latency observatory (DESIGN.md
   section 15).

   The HDR histogram is checked against exact order statistics (qcheck):
   every quantile estimate must sit within the bucket's relative-error
   bound of the true ranked value, and merging histograms must equal the
   histogram of the concatenated observations.  The span side hammers a
   drain_stage pipeline with repeated DoP changes on both backends and
   asserts the accounting invariant the design promises: every retained
   record's five phases sum to its total exactly, with every request
   completed exactly once — also under pooled record reuse with stale
   tokens, double finishes, and ring overflow.  The HTTP exposition
   server gets a golden-response check and a concurrent-scrape smoke. *)

open Parcae_sim
module Engine = Parcae_platform.Engine
module Chan = Parcae_platform.Chan
module Obs = Parcae_obs
module Span = Parcae_obs.Span
module Hdr = Parcae_obs.Hdr
open Parcae_core
open Parcae_runtime

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- HDR histogram vs exact order statistics (qcheck) ---- *)

let ladder = [ 0.5; 0.9; 0.99; 0.999 ]

let exact_quantile sorted q =
  let n = Array.length sorted in
  let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
  sorted.(rank - 1)

(* sub_bits 7 buckets are at most 1/128 of their value wide, so the
   estimate (a bucket upper bound clamped to the observed max) can sit at
   most value/128 + 1 above the exact ranked value, and never below it. *)
let prop_hdr_error_bound =
  QCheck.Test.make ~name:"hdr quantiles within the relative-error bound" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 400) (int_range 0 2_000_000_000))
    (fun xs ->
      QCheck.assume (xs <> []);
      let h = Hdr.create () in
      List.iter (Hdr.observe h) xs;
      let sorted = Array.of_list (List.sort compare xs) in
      List.for_all
        (fun q ->
          let exact = exact_quantile sorted q in
          let est = Hdr.quantile h q in
          exact <= est && est <= exact + (exact / 128) + 1)
        ladder)

let prop_hdr_merge =
  QCheck.Test.make ~name:"hdr merge equals histogram of the concatenation" ~count:200
    QCheck.(pair (small_list (int_range 0 10_000_000)) (small_list (int_range 0 10_000_000)))
    (fun (xs, ys) ->
      let a = Hdr.create () and b = Hdr.create () and all = Hdr.create () in
      List.iter (Hdr.observe a) xs;
      List.iter (Hdr.observe b) ys;
      List.iter (Hdr.observe all) (xs @ ys);
      Hdr.merge ~into:a b;
      Hdr.count a = Hdr.count all
      && Hdr.sum a = Hdr.sum all
      && List.for_all (fun q -> Hdr.quantile a q = Hdr.quantile all q) ladder)

(* ---- phase-sum invariant under the reconfigure hammer ---- *)

(* The batched pipeline from the pool tests, with spans attached: one
   preallocated span per item, reset at production, stamped through both
   drain stages, finished at the tail.  The invariant checked afterwards
   is the design's central claim: queue + chan + compute + reconfig + gc
   equals end minus arrival exactly, per record, under live DoP changes. *)
let make_span_pipeline ?(work = 2_000) eng n =
  let spans = Array.init n (fun _ -> Span.make_span ()) in
  let clock () = Engine.time eng in
  let span_of v = spans.(v) in
  let q1 = Chan.create ~capacity:8 eng "sq1" and q2 = Chan.create ~capacity:8 eng "sq2" in
  let produced = ref 0 and consumed = ref 0 in
  let produce =
    Pipeline.source ~name:"produce"
      ~forward:(Pipeline.forward_to q1)
      (fun _ctx ->
        if !produced >= n then Task_status.Complete
        else begin
          Engine.compute (work / 4);
          Span.reset spans.(!produced) ~id:!produced ~arrival_ns:(clock ());
          Pipeline.send q1 !produced;
          incr produced;
          Task_status.Iterating
        end)
  in
  let transform =
    Pipeline.drain_stage ~name:"transform" ~input:q1 ~load:(Pipeline.load q1)
      ~next:q2
      ~forward:(Pipeline.forward_to q2)
      ~span_of ~span_clock:clock
      (fun ctx _v ->
        ctx.Task.hook_begin ();
        Engine.compute work;
        ctx.Task.hook_end ();
        Task_status.Iterating)
  in
  let consume =
    Pipeline.drain_stage ~ttype:Task.Seq ~name:"consume" ~input:q2
      ~forward:(fun _ -> ())
      ~span_of ~span_clock:clock
      (fun _ctx v ->
        incr consumed;
        Span.finish spans.(v) ~now:(clock ());
        Task_status.Iterating)
  in
  let pd =
    Task.descriptor ~name:"spanned"
      [ produce.Pipeline.task; transform.Pipeline.task; consume.Pipeline.task ]
  in
  let on_reset =
    Pipeline.make_reset ~stages:[ produce; transform; consume ] ~channels:[ q1; q2 ]
  in
  (* The flush-sentinel pause protocol (like the real apps' on_pause):
     stages park at the Flush instead of draining the whole backlog, so
     items behind it stay queued across the pause — the in-flight spans
     whose waits the Reconfig carving re-attributes. *)
  let on_pause () = Pipeline.inject_flush q1 in
  (pd, on_reset, on_pause, consumed)

let config dop = Config.make [ Config.seq_task; Config.task dop; Config.seq_task ]

let check_phase_sums ~n sc =
  check_int "all spans completed" n (Span.completed sc);
  check_int "no double finishes" 0 (Span.double_finishes sc);
  check_int "no drops" 0 (Span.drops sc);
  let records = Span.records sc in
  check_int "all records retained" n (List.length records);
  List.iter
    (fun (rv : Span.rec_view) ->
      check_int
        (Printf.sprintf "request %d: phases sum to total" rv.Span.rv_id)
        rv.Span.rv_total
        (rv.Span.rv_queue + rv.Span.rv_chan + rv.Span.rv_compute + rv.Span.rv_reconfig
       + rv.Span.rv_gc);
      check_bool
        (Printf.sprintf "request %d: no negative phase" rv.Span.rv_id)
        true
        (rv.Span.rv_queue >= 0 && rv.Span.rv_chan >= 0 && rv.Span.rv_compute >= 0
        && rv.Span.rv_reconfig >= 0 && rv.Span.rv_gc >= 0))
    records

let test_phase_sum_reconfigure_sim () =
  let machine =
    { (Machine.test_machine ~cores:8 ()) with Machine.ctx_switch = 0; chan_op = 5 }
  in
  let eng = Engine.create machine in
  let n = 400 in
  let sc = Span.create ~capacity:(2 * n) () in
  Span.with_collector sc (fun () ->
      let pd, on_reset, on_pause, consumed = make_span_pipeline eng n in
      let _ =
        Engine.spawn eng ~name:"driver" (fun () ->
            let r = Executor.launch ~name:"s" eng [ pd ] ~on_reset ~on_pause (config 1) in
            let dop = ref 1 in
            while not (Region.is_done r) do
              (* A DoP-only change takes the light-resize path (no stall);
                 the explicit pause/hold/resume cycle forces full barriers
                 so the Reconfig carving is actually exercised. *)
              Engine.sleep 20_000;
              dop := (!dop mod 6) + 1;
              Executor.reconfigure r (config !dop);
              Engine.sleep 20_000;
              if Executor.pause r then begin
                Engine.sleep 5_000;
                Executor.resume r
              end
            done)
      in
      ignore (Engine.run eng);
      check_int "all consumed" n !consumed);
  check_phase_sums ~n sc;
  (* The hammer reconfigures throughout the run, so the stall accounting
     must actually have carved a reconfig phase somewhere. *)
  check_bool "some reconfig stall attributed" true
    (List.exists (fun (rv : Span.rec_view) -> rv.Span.rv_reconfig > 0) (Span.records sc))

let test_phase_sum_reconfigure_native () =
  let eng = Engine.create_native ~pool:3 () in
  let n = 120 in
  let sc = Span.create ~capacity:(2 * n) () in
  Span.with_collector sc (fun () ->
      let pd, on_reset, on_pause, consumed = make_span_pipeline ~work:200_000 eng n in
      let region =
        Executor.launch ~budget:3 ~name:"s" eng [ pd ] ~on_reset ~on_pause (config 1)
      in
      ignore
        (Engine.spawn eng ~name:"driver" (fun () ->
             let dop = ref 1 in
             for _ = 1 to 4 do
               Engine.sleep 3_000_000;
               if not (Region.is_done region) then begin
                 dop := (!dop mod 3) + 1;
                 Executor.reconfigure region (config !dop)
               end
             done));
      ignore (Engine.run ~until:60_000_000_000 eng);
      Engine.shutdown eng;
      check_bool "region finished" true (Region.is_done region);
      check_int "all consumed" n !consumed);
  check_phase_sums ~n sc

(* ---- exactly-once completion under pooled record reuse ---- *)

let test_exactly_once_reuse () =
  let sc = Span.create () in
  Span.with_collector sc (fun () ->
      let sp = Span.make_span () in
      (* Life 1: normal flow, then a double finish. *)
      Span.reset sp ~id:1 ~arrival_ns:0;
      let tok = Span.enter sp ~now:10 in
      Span.exit sp ~token:tok ~now:25;
      Span.finish sp ~now:30;
      check_int "first finish lands" 1 (Span.completed sc);
      Span.finish sp ~now:40;
      check_int "double finish is dropped" 1 (Span.completed sc);
      check_int "double finish is counted" 1 (Span.double_finishes sc);
      (* Life 2: pooled reuse — the life-1 token must be stale. *)
      Span.reset sp ~id:2 ~arrival_ns:100;
      Span.exit sp ~token:tok ~now:150;
      let tok2 = Span.enter sp ~now:110 in
      Span.exit sp ~token:tok2 ~now:130;
      Span.finish sp ~now:140;
      check_int "reused record completes once more" 2 (Span.completed sc));
  match Span.records sc with
  | [ r1; r2 ] ->
      check_int "life 1 total" 30 r1.Span.rv_total;
      check_int "life 1 queue" 10 r1.Span.rv_queue;
      check_int "life 1 compute" 15 r1.Span.rv_compute;
      check_int "life 1 stage0 segment" 15 r1.Span.rv_stage_ns.(0);
      check_int "life 2 total" 40 r2.Span.rv_total;
      check_int "life 2 compute (stale exit ignored)" 20 r2.Span.rv_compute;
      check_int "life 2 phase sum" r2.Span.rv_total
        (r2.Span.rv_queue + r2.Span.rv_chan + r2.Span.rv_compute + r2.Span.rv_reconfig
       + r2.Span.rv_gc)
  | rs -> Alcotest.failf "expected 2 records, got %d" (List.length rs)

(* ---- the shared null span is inert, even with a collector installed ----

   A record minted while tracing was disabled still carries [Span.null]
   after a mid-run enable; every hook must skip it physically — no
   mutation, no completion, no double-finish pollution. *)

let test_null_span_inert () =
  let sc = Span.create () in
  Span.with_collector sc (fun () ->
      let sp = Span.null in
      Span.reset sp ~id:9 ~arrival_ns:0;
      let tok = Span.enter sp ~now:10 in
      Span.exit sp ~token:tok ~now:25;
      Span.finish sp ~now:30;
      check_int "null finish publishes nothing" 0 (Span.completed sc);
      check_int "null finish is not a double finish" 0 (Span.double_finishes sc);
      check_int "null span id untouched" (-1) sp.Span.s_id;
      check_int "null span accumulates nothing" 0
        (sp.Span.s_queue_ns + sp.Span.s_chan_ns + sp.Span.s_compute_ns);
      check_bool "null span stays closed" false sp.Span.s_open)

(* ---- ring overflow never corrupts the quantiles ---- *)

let test_overflow_keeps_quantiles () =
  let sink = Obs.Sink.create ~capacity:1024 () in
  let sc = Span.create ~capacity:8 () in
  let n = 100 in
  Obs.Trace.with_sink sink (fun () ->
      Span.with_collector sc (fun () ->
          let sp = Span.make_span () in
          for i = 1 to n do
            Span.reset sp ~id:i ~arrival_ns:0;
            Span.finish sp ~now:(i * 1000)
          done));
  check_int "all completions counted" n (Span.completed sc);
  check_int "overflow drops counted" (n - 8) (Span.drops sc);
  check_int "ring keeps the last capacity records" 8 (List.length (Span.records sc));
  (* The HDR distribution saw every completion, so the quantiles must
     reflect all 100 totals (1000..100000), not the 8 survivors. *)
  List.iter
    (fun q ->
      let exact = int_of_float (ceil (q *. float_of_int n)) * 1000 in
      let est = Span.quantile_ns sc q in
      check_bool
        (Printf.sprintf "overflowed q=%g stays exact-ish (%d vs %d)" q est exact)
        true
        (exact <= est && est <= exact + (exact / 128) + 1))
    ladder;
  (* The first drop emits the trace marker, mirroring the sink's own
     overflow treatment. *)
  let overflows =
    List.filter
      (fun (e : Obs.Event.t) ->
        match e.Obs.Event.kind with Obs.Event.Span_overflow _ -> true | _ -> false)
      (Obs.Sink.events sink)
  in
  check_int "one span-overflow marker" 1 (List.length overflows)

(* ---- HTTP exposition endpoint ---- *)

(* A tiny blocking GET against 127.0.0.1:port; returns (status, body). *)
let http_get port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req = Printf.sprintf "GET %s HTTP/1.1\r\nHost: test\r\n\r\n" path in
      ignore (Unix.write_substring fd req 0 (String.length req));
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 1024 in
      let rec drain () =
        let n = Unix.read fd chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        end
      in
      (try drain () with Unix.Unix_error _ -> ());
      let s = Buffer.contents buf in
      let status =
        try Scanf.sscanf s "HTTP/1.1 %d" Fun.id with Scanf.Scan_failure _ | End_of_file -> 0
      in
      let body =
        let rec find i =
          if i + 4 > String.length s then ""
          else if String.sub s i 4 = "\r\n\r\n" then
            String.sub s (i + 4) (String.length s - i - 4)
          else find (i + 1)
        in
        find 0
      in
      (status, body))

(* One collector + registry with a known span, served over the real
   socket stack: golden body for /healthz, the summary families present
   in /metrics, a parseable /latency.json, and 404/405 handling. *)
let test_http_endpoint_golden () =
  let reg = Obs.Metrics.create () in
  let sc = Span.create () in
  Obs.Metrics.with_registry reg (fun () ->
      Span.with_collector sc (fun () ->
          let sp = Span.make_span () in
          Span.reset sp ~id:7 ~arrival_ns:0;
          let tok = Span.enter sp ~now:200 in
          Span.exit sp ~token:tok ~now:900;
          Span.finish sp ~now:1000));
  let routes =
    [
      ( "/metrics",
        fun () ->
          Obs.Httpd.ok ~content_type:"text/plain; version=0.0.4"
            (Obs.Metrics.to_prometheus reg) );
      ("/healthz", fun () -> Obs.Httpd.ok "ok\n");
      ( "/latency.json",
        fun () ->
          Obs.Httpd.ok ~content_type:"application/json"
            (Obs.Json.to_string (Span.report_json sc)) );
    ]
  in
  let srv = Obs.Httpd.start ~port:0 ~routes () in
  Fun.protect
    ~finally:(fun () -> Obs.Httpd.stop srv)
    (fun () ->
      let port = Obs.Httpd.port srv in
      let status, body = http_get port "/healthz" in
      check_int "healthz status" 200 status;
      Alcotest.(check string) "healthz body" "ok\n" body;
      let status, body = http_get port "/metrics" in
      check_int "metrics status" 200 status;
      let contains hay needle =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      check_bool "latency summary exported" true
        (contains body "# TYPE parcae_request_latency_ns summary");
      check_bool "phase summary exported" true
        (contains body "parcae_request_phase_ns{phase=\"queue\",quantile=\"0.5\"}");
      check_bool "count series exported" true
        (contains body "parcae_request_latency_ns_count 1");
      let status, body = http_get port "/latency.json" in
      check_int "latency.json status" 200 status;
      check_bool "latency.json completed field" true (contains body "\"completed\":1");
      let status, _ = http_get port "/nope" in
      check_int "unknown path is 404" 404 status)

let test_http_concurrent_scrape () =
  let hits = Atomic.make 0 in
  let routes = [ ("/healthz", fun () -> Atomic.incr hits; Obs.Httpd.ok "ok\n") ] in
  let srv = Obs.Httpd.start ~port:0 ~routes () in
  Fun.protect
    ~finally:(fun () -> Obs.Httpd.stop srv)
    (fun () ->
      let port = Obs.Httpd.port srv in
      let failures = Atomic.make 0 in
      let scraper () =
        for _ = 1 to 20 do
          let status, body = http_get port "/healthz" in
          if status <> 200 || body <> "ok\n" then Atomic.incr failures
        done
      in
      let threads = List.init 4 (fun _ -> Thread.create scraper ()) in
      List.iter Thread.join threads;
      check_int "every concurrent scrape succeeded" 0 (Atomic.get failures);
      check_int "every scrape hit the handler" 80 (Atomic.get hits))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_hdr_error_bound;
    QCheck_alcotest.to_alcotest prop_hdr_merge;
    Alcotest.test_case "span: phase sums under reconfigure hammer (sim)" `Quick
      test_phase_sum_reconfigure_sim;
    Alcotest.test_case "span: phase sums under reconfigure hammer (native)" `Slow
      test_phase_sum_reconfigure_native;
    Alcotest.test_case "span: exactly-once with pooled reuse" `Quick test_exactly_once_reuse;
    Alcotest.test_case "span: null span is inert under a collector" `Quick
      test_null_span_inert;
    Alcotest.test_case "span: ring overflow keeps quantiles exact" `Quick
      test_overflow_keeps_quantiles;
    Alcotest.test_case "httpd: golden responses" `Quick test_http_endpoint_golden;
    Alcotest.test_case "httpd: concurrent scrape smoke" `Quick test_http_concurrent_scrape;
  ]
