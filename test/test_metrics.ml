(* Tests for the metrics registry (Obs.Metrics), its Prometheus/JSON
   exposition, the folded-stack profiler, and the instrumentation wired
   through the simulator and runtime: format validity, counter
   monotonicity across a run, zero-perturbation of results with metrics
   on vs off, byte-identical same-seed snapshots, and exact agreement
   between the folded profile and Decima's per-task compute totals. *)

open Parcae_sim

(* Engine/value types come from the platform dispatch layer (the runtime's
   own types); [Machine]/[Power]/etc. remain from [Parcae_sim] above. *)
module Engine = Parcae_platform.Engine
module Chan = Parcae_platform.Chan
module Lock = Parcae_platform.Lock
module Barrier = Parcae_platform.Barrier
open Parcae_workloads
module Obs = Parcae_obs
module Metrics = Obs.Metrics
module Profile = Obs.Profile
module Json = Obs.Json
module R = Parcae_runtime
module Task = Parcae_core.Task

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_float = Alcotest.(check (float 0.0))

(* --------------------------- registry unit -------------------------- *)

let test_instruments () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "c_total" in
  Metrics.inc c;
  Metrics.inc_by c 4;
  check_int "counter accumulates" 5 (Metrics.counter_value c);
  (* Re-requesting the same (name, labels) yields the same instrument. *)
  Metrics.inc (Metrics.counter reg "c_total");
  check_int "same series, same cell" 6 (Metrics.counter_value c);
  let g = Metrics.gauge reg "g" in
  Metrics.set_gauge g 2.5;
  Metrics.add_gauge g 0.5;
  check_float "gauge settles" 3.0 (Metrics.gauge_value g);
  let h = Metrics.histogram reg "h_ns" ~buckets:(Metrics.log_buckets ~base:10.0 ~lo:10.0 ~count:3) in
  List.iter (Metrics.observe h) [ 5.0; 10.0; 11.0; 99.0; 5000.0 ];
  check_int "histogram count" 5 (Metrics.histogram_count h);
  check_float "histogram sum" 5125.0 (Metrics.histogram_sum h);
  (* Labeled series are independent. *)
  let a = Metrics.counter reg "lab_total" ~labels:[ ("k", "a") ] in
  let b = Metrics.counter reg "lab_total" ~labels:[ ("k", "b") ] in
  Metrics.inc a;
  check_int "labels split series" 0 (Metrics.counter_value b)

let test_family_conflicts () =
  let reg = Metrics.create () in
  ignore (Metrics.counter reg "x_total");
  Alcotest.check_raises "kind mismatch rejected"
    (Invalid_argument "Metrics: x_total registered as counter, requested as gauge")
    (fun () -> ignore (Metrics.gauge reg "x_total"));
  ignore (Metrics.counter reg "y_total" ~labels:[ ("a", "1") ]);
  Alcotest.check_raises "label arity mismatch rejected"
    (Invalid_argument "Metrics: y_total label arity mismatch") (fun () ->
      ignore (Metrics.counter reg "y_total"))

let test_null_registry_inert () =
  Metrics.clear ();
  check_bool "disabled by default" false (Metrics.enabled ());
  check_bool "current is null" true (Metrics.is_null (Metrics.current ()));
  (* Stray unguarded emitters against the null registry are harmless and
     leave nothing behind. *)
  let c = Metrics.counter Metrics.null "stray_total" in
  Metrics.inc c;
  Metrics.observe (Metrics.histogram Metrics.null "stray_ns") 1.0;
  check_int "null registry never exposes series" 0 (List.length (Metrics.snapshot Metrics.null));
  let reg = Metrics.create () in
  Metrics.with_registry reg (fun () ->
      check_bool "enabled inside with_registry" true (Metrics.enabled ());
      Metrics.inc (Metrics.counter (Metrics.current ()) "in_total"));
  check_bool "with_registry restores" false (Metrics.enabled ());
  check_int "event landed in installed registry" 1 (List.length (Metrics.snapshot reg))

let test_quantile () =
  let bounds = [| 1.0; 2.0; 4.0 |] in
  (* 1 sample <=1, 2 in (1,2], 1 in (2,4], 1 overflow *)
  let counts = [| 1; 2; 1; 1 |] in
  check_float "median in second bucket" 2.0 (Metrics.quantile ~bounds ~counts 0.5);
  check_float "p99 clamps to largest bound" 4.0 (Metrics.quantile ~bounds ~counts 0.99);
  check_bool "empty histogram gives nan" true
    (Float.is_nan (Metrics.quantile ~bounds ~counts:[| 0; 0; 0; 0 |] 0.5))

(* ------------------- Prometheus format validation ------------------- *)

(* Minimal validator for the text exposition format 0.0.4: every family
   has TYPE (and HELP when non-empty help was given) before its samples;
   every sample line parses; histogram buckets are cumulative and
   nondecreasing, end at le="+Inf" equal to _count; counters are
   nonnegative integers. *)

let parse_sample line =
  match String.rindex_opt line ' ' with
  | None -> Alcotest.fail ("sample line has no value: " ^ line)
  | Some i ->
      let head = String.sub line 0 i in
      let v = String.sub line (i + 1) (String.length line - i - 1) in
      let value =
        match float_of_string_opt v with
        | Some f -> f
        | None -> Alcotest.fail ("unparsable value in: " ^ line)
      in
      let name, labels =
        match String.index_opt head '{' with
        | None -> (head, [])
        | Some j ->
            if head.[String.length head - 1] <> '}' then
              Alcotest.fail ("unterminated label block: " ^ line);
            let body = String.sub head (j + 1) (String.length head - j - 2) in
            let pairs =
              if body = "" then []
              else
                List.map
                  (fun kv ->
                    match String.index_opt kv '=' with
                    | None -> Alcotest.fail ("malformed label in: " ^ line)
                    | Some e ->
                        let k = String.sub kv 0 e in
                        let v = String.sub kv (e + 1) (String.length kv - e - 1) in
                        if String.length v < 2 || v.[0] <> '"' || v.[String.length v - 1] <> '"'
                        then Alcotest.fail ("unquoted label value in: " ^ line);
                        (k, String.sub v 1 (String.length v - 2)))
                  (String.split_on_char ',' body)
            in
            (String.sub head 0 j, pairs)
      in
      (name, labels, value)

let strip_suffix name =
  let try_one suf =
    if Filename.check_suffix name suf then Some (Filename.chop_suffix name suf) else None
  in
  match (try_one "_bucket", try_one "_sum", try_one "_count") with
  | Some b, _, _ -> b
  | _, Some b, _ -> b
  | _, _, Some b -> b
  | _ -> name

let validate_prometheus text =
  let lines = String.split_on_char '\n' text |> List.filter (fun l -> l <> "") in
  let types = Hashtbl.create 16 and helps = Hashtbl.create 16 in
  (* (family, labels sans le) -> cumulative bucket values in exposition
     order, and the _count value, for consistency checking. *)
  let buckets = Hashtbl.create 16 and h_counts = Hashtbl.create 16 in
  List.iter
    (fun line ->
      if String.length line > 0 && line.[0] = '#' then begin
        match String.split_on_char ' ' line with
        | "#" :: "HELP" :: name :: _ -> Hashtbl.replace helps name true
        | "#" :: "TYPE" :: name :: [ kind ] ->
            check_bool ("known TYPE in: " ^ line) true
              (List.mem kind [ "counter"; "gauge"; "histogram" ]);
            check_bool ("TYPE only once for " ^ name) false (Hashtbl.mem types name);
            Hashtbl.replace types name kind
        | _ -> Alcotest.fail ("malformed comment line: " ^ line)
      end
      else begin
        let name, labels, value = parse_sample line in
        let base =
          let stripped = strip_suffix name in
          if Hashtbl.find_opt types stripped = Some "histogram" then stripped else name
        in
        (match Hashtbl.find_opt types base with
        | Some _ -> ()
        | None -> Alcotest.fail ("sample before TYPE: " ^ line));
        check_bool ("HELP present for " ^ base) true (Hashtbl.mem helps base);
        (match Hashtbl.find_opt types base with
        | Some "counter" ->
            check_bool ("counter is a nonnegative integer: " ^ line) true
              (Float.is_integer value && value >= 0.0)
        | Some "histogram" when base <> name ->
            let series_key (labels : (string * string) list) =
              (base, List.filter (fun (k, _) -> k <> "le") labels)
            in
            if Filename.check_suffix name "_bucket" then begin
              check_bool ("bucket has le: " ^ line) true (List.mem_assoc "le" labels);
              let key = series_key labels in
              let prev = Option.value ~default:[] (Hashtbl.find_opt buckets key) in
              (match prev with
              | (last_le, last_v) :: _ ->
                  check_bool ("buckets nondecreasing: " ^ line) true (value >= last_v);
                  check_bool ("le strictly after " ^ last_le) true (last_le <> "+Inf")
              | [] -> ());
              Hashtbl.replace buckets key ((List.assoc "le" labels, value) :: prev)
            end
            else if Filename.check_suffix name "_count" then
              Hashtbl.replace h_counts (series_key labels) value
        | _ -> ())
      end)
    lines;
  (* Every histogram series: final bucket is +Inf and equals _count. *)
  Hashtbl.iter
    (fun (base, lbls) cum ->
      match cum with
      | (le, v) :: _ ->
          check_string ("last bucket of " ^ base ^ " is +Inf") "+Inf" le;
          let count =
            match Hashtbl.find_opt h_counts (base, lbls) with
            | Some c -> c
            | None -> Alcotest.fail ("histogram without _count: " ^ base)
          in
          check_float ("+Inf bucket equals _count for " ^ base) count v
      | [] -> ())
    buckets;
  check_bool "validated at least one family" true (Hashtbl.length types > 0)

(* ------------------------- instrumented runs ------------------------ *)

let machine = Machine.xeon_x7460

(* A short ferret batch under a static even configuration: no mechanism,
   so Decima is never reset and per-task compute attribution is exact. *)
let ferret_batch ?on_start () =
  Experiments.run_batch ~m:25 ~seed:11 ~machine ~config:(`Named "even") ?on_start
    (fun ~budget eng -> Ferret.make ~budget eng)

let with_fresh_registry f =
  let reg = Metrics.create () in
  let r = Metrics.with_registry reg f in
  (reg, r)

let test_real_run_prometheus_valid () =
  let reg, (r, _, _) = with_fresh_registry (fun () -> ferret_batch ()) in
  check_int "all requests completed" r.Experiments.submitted r.Experiments.completed;
  let text = Metrics.to_prometheus reg in
  check_bool "exposition non-trivial" true (String.length text > 500);
  validate_prometheus text

let test_real_run_json_parses () =
  let reg, _ = with_fresh_registry (fun () -> ferret_batch ()) in
  let j = Json.parse (Metrics.to_json_string reg) in
  let fams = Json.get_list "families" j in
  check_bool "families present" true (fams <> []);
  List.iter
    (fun f ->
      check_bool "family has a name" true (Json.get_str "name" f <> "");
      check_bool "known kind" true
        (List.mem (Json.get_str "kind" f) [ "counter"; "gauge"; "histogram" ]);
      check_bool "series list present" true (Json.get_list "series" f <> []))
    fams

(* Counter samples from a snapshot as ((family, label values), value). *)
let counter_values reg =
  List.concat_map
    (fun (f : Metrics.fam_snapshot) ->
      List.filter_map
        (fun { Metrics.labels; value } ->
          match value with
          | Metrics.Counter_v n -> Some ((f.Metrics.name, labels), n)
          | _ -> None)
        f.Metrics.samples)
    (Metrics.snapshot reg)

let test_counters_monotone_mid_to_end () =
  let mid = ref [] in
  let on_start (a : App.t) _region =
    ignore
      (Engine.spawn a.App.eng ~name:"mid-sampler" (fun () ->
           Engine.sleep 100_000_000;
           mid := counter_values (Metrics.current ())))
  in
  let reg, _ = with_fresh_registry (fun () -> ferret_batch ~on_start ()) in
  check_bool "mid-run snapshot captured series" true (!mid <> []);
  let final = counter_values reg in
  List.iter
    (fun (key, v_mid) ->
      match List.assoc_opt key final with
      | None -> Alcotest.fail ("counter series vanished: " ^ fst key)
      | Some v_end ->
          check_bool
            (Printf.sprintf "%s monotone (%d -> %d)" (fst key) v_mid v_end)
            true (v_end >= v_mid))
    !mid

let test_metrics_do_not_perturb_run () =
  let run () =
    let r, _, _ = ferret_batch () in
    r
  in
  let off = run () in
  let reg_a, on_a = with_fresh_registry run in
  let reg_b, _on_b = with_fresh_registry run in
  (* Identical virtual-time results with metrics on vs off... *)
  check_float "sim end time unchanged" off.Experiments.sim_end_s on_a.Experiments.sim_end_s;
  check_int "completions unchanged" off.Experiments.completed on_a.Experiments.completed;
  check_float "throughput unchanged" off.Experiments.throughput_rps
    on_a.Experiments.throughput_rps;
  check_float "energy unchanged" off.Experiments.energy_j on_a.Experiments.energy_j;
  (* ...and byte-identical snapshots between two same-seed metered runs. *)
  check_string "same seed, byte-identical Prometheus text"
    (Metrics.to_prometheus reg_a) (Metrics.to_prometheus reg_b);
  check_string "same seed, byte-identical JSON" (Metrics.to_json_string reg_a)
    (Metrics.to_json_string reg_b)

(* --------------------------- folded profile ------------------------- *)

let test_profile_matches_decima () =
  let run () =
    let captured = ref None in
    let reg, _ =
      with_fresh_registry (fun () ->
          ferret_batch ~on_start:(fun _ region -> captured := Some region) ())
    in
    (reg, Option.get !captured)
  in
  let reg, region = run () in
  let folded = Profile.folded reg in
  check_bool "profile non-empty" true (folded <> "");
  (* Determinism: a second same-seed run folds to the same bytes. *)
  let reg2, _ = run () in
  check_string "profile deterministic" folded (Profile.folded reg2);
  (* Exact agreement with Decima's per-task compute totals. *)
  let d = R.Region.decima region in
  let names =
    List.map (fun (tk : Task.t) -> tk.Task.name) (R.Region.scheme region).Task.tasks
  in
  let rows = Profile.parse folded in
  List.iteri
    (fun i name ->
      let total = R.Decima.compute_ns d i in
      let in_profile =
        List.filter_map
          (fun (frames, v) ->
            match frames with
            | [ _; _; task ] when task = name -> Some v
            | _ -> None)
          rows
      in
      if total > 0 then check_bool ("stage " ^ name ^ " profiled") true (in_profile <> []);
      check_int ("stage " ^ name ^ " compute ns") total (List.fold_left ( + ) 0 in_profile))
    names;
  (* Every row maps back to a known stage of this run. *)
  List.iter
    (fun (frames, v) ->
      check_bool "positive sample" true (v > 0);
      match frames with
      | [ region_f; scheme_f; task ] ->
          check_string "region frame" region.R.Region.name region_f;
          check_string "scheme frame" (R.Region.scheme_name region) scheme_f;
          check_bool ("known task " ^ task) true (List.mem task names)
      | _ -> Alcotest.fail "profile row must have region;scheme;task frames")
    rows

let test_profile_parse_roundtrip () =
  let reg = Metrics.create () in
  let c name =
    Metrics.counter reg Profile.default_family
      ~labels:[ ("region", "r 1"); ("scheme", "s;2"); ("task", name) ]
  in
  Metrics.inc_by (c "a") 10;
  Metrics.inc_by (c "b") 20;
  ignore (c "zero");  (* zero-valued series are skipped *)
  let folded = Profile.folded reg in
  check_bool "frames sanitized" true
    (Profile.parse folded = [ ([ "r_1"; "s_2"; "a" ], 10); ([ "r_1"; "s_2"; "b" ], 20) ])

(* ----------------------------- dashboard ---------------------------- *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_dashboard_render () =
  let reg = Metrics.create () in
  check_bool "empty registry renders placeholder" true
    (String.length (Dashboard.render ~now_s:0.0 reg) > 0);
  Metrics.inc_by (Metrics.counter reg "parcae_x_total" ~labels:[ ("k", "v") ]) 3;
  Metrics.set_gauge (Metrics.gauge reg "parcae_depth") 4.5;
  Metrics.observe (Metrics.histogram reg "parcae_h_ns") 1000.0;
  let out = Dashboard.render ~now_s:1.25 reg in
  List.iter
    (fun needle ->
      check_bool ("render mentions " ^ needle) true (contains out needle))
    [ "parcae_x_total{k=v}"; "parcae_depth"; "parcae_h_ns"; "p95" ]

let suite =
  [
    Alcotest.test_case "registry: instruments and series identity" `Quick test_instruments;
    Alcotest.test_case "registry: family conflicts rejected" `Quick test_family_conflicts;
    Alcotest.test_case "registry: null registry is inert" `Quick test_null_registry_inert;
    Alcotest.test_case "registry: bucket quantiles" `Quick test_quantile;
    Alcotest.test_case "prometheus: real run passes format validation" `Quick
      test_real_run_prometheus_valid;
    Alcotest.test_case "json: real run snapshot parses" `Quick test_real_run_json_parses;
    Alcotest.test_case "counters monotone from mid-run to end" `Quick
      test_counters_monotone_mid_to_end;
    Alcotest.test_case "metrics on/off: identical results, deterministic snapshots" `Quick
      test_metrics_do_not_perturb_run;
    Alcotest.test_case "profile: folded stacks match Decima totals" `Quick
      test_profile_matches_decima;
    Alcotest.test_case "profile: sanitize and parse round-trip" `Quick
      test_profile_parse_roundtrip;
    Alcotest.test_case "dashboard: renders all instrument kinds" `Quick test_dashboard_render;
  ]
