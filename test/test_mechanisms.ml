(* Unit tests for the mechanism decision rules (Chapter 6), independent of
   full workload runs: WQT-H's hysteresis state machine, WQ-Linear's
   Equation 6.1, TBF's proportional allocation and imbalance trigger, and
   SEDA's local growth. *)

open Parcae_sim

(* Engine/value types come from the platform dispatch layer (the runtime's
   own types); [Machine]/[Power]/etc. remain from [Parcae_sim] above. *)
module Engine = Parcae_platform.Engine
module Chan = Parcae_platform.Chan
module Lock = Parcae_platform.Lock
module Barrier = Parcae_platform.Barrier
open Parcae_core
open Parcae_runtime
module Mech = Parcae_mechanisms

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let machine = Machine.test_machine ~cores:8 ()

(* A minimal region whose single task spins until told to stop; mechanisms
   only need it for its current configuration and Decima statistics. *)
let make_trivial_region ?load eng ~dop =
  let stop = ref false in
  let task =
    Task.parallel ?load ~name:"spin" (fun ctx ->
        match ctx.Task.get_status () with
        | Task_status.Paused -> Task_status.Paused
        | _ ->
            if !stop then Task_status.Complete
            else begin
              Engine.compute 100;
              Task_status.Iterating
            end)
  in
  let pd = Task.descriptor ~name:"trivial" [ task ] in
  let r = Executor.launch ~budget:8 ~name:"trivial" eng [ pd ] (Config.make [ Config.task dop ]) in
  (r, stop)

(* ---------------------------- WQT-H ---------------------------- *)

let test_wqt_h_hysteresis () =
  let eng = Engine.create machine in
  let region, stop = make_trivial_region eng ~dop:2 in
  (* Both targets differ from the running configuration so a flip is
     always an observable proposal. *)
  let light = Config.make [ Config.task 3 ] and heavy = Config.make [ Config.task 6 ] in
  let load = ref 0.0 in
  let mech = Mech.Wqt_h.make ~load:(fun () -> !load) ~threshold:5.0 ~non:2 ~noff:2 ~light ~heavy () in
  (* Starts in Heavy; two low observations flip to Light. *)
  load := 1.0;
  check_bool "first low obs: no flip yet" true (mech region = None);
  (match mech region with
  | Some p ->
      check_bool "flips to light" true (Config.equal p.Morta.cfg light);
      Alcotest.(check string) "light reason" "wq_toggle_light" p.Morta.why
  | None -> Alcotest.fail "expected flip to light");
  (* One high observation is not enough (hysteresis). *)
  load := 10.0;
  check_bool "one high obs: no flip" true (mech region = None);
  load := 1.0;
  (* The counter must have been reset by the low observation. *)
  check_bool "counter reset" true (mech region = None);
  load := 10.0;
  check_bool "high 1/2" true (mech region = None);
  (match mech region with
  | Some p ->
      check_bool "flips to heavy" true (Config.equal p.Morta.cfg heavy);
      Alcotest.(check string) "heavy reason" "wq_toggle_heavy" p.Morta.why
  | None -> Alcotest.fail "expected flip to heavy");
  stop := true;
  ignore (Engine.run eng)

(* -------------------------- WQ-Linear -------------------------- *)

let test_wq_linear_formula () =
  (* Equation 6.1: dP = max(dPmin, dPmax - k*WQo), k = (dPmax-dPmin)/Qmax *)
  let dop q = Mech.Wq_linear.dop_of_load ~dpmin:1 ~dpmax:8 ~qmax:14.0 q in
  check_int "empty queue -> dPmax" 8 (dop 0.0);
  check_int "full queue -> dPmin" 1 (dop 14.0);
  check_int "beyond qmax clamps" 1 (dop 100.0);
  check_bool "monotone nonincreasing" true
    (List.for_all
       (fun (a, b) -> dop a >= dop b)
       [ (0.0, 2.0); (2.0, 5.0); (5.0, 9.0); (9.0, 14.0) ]);
  (* 8 - 0.5*7 = 4.5, rounded half away from zero *)
  check_int "midpoint" 5 (dop 7.0)

(* ----------------------------- TBF ----------------------------- *)

(* Build a region with a 3-stage pipeline whose middle stages have known
   exec times, measured through real hooks on a simulated thread. *)
let test_tbf_proportional () =
  let eng = Engine.create machine in
  let d = Decima.create eng ~tasks:4 in
  (* Feed Decima synthetic exec times: task 1 -> 1 us, task 2 -> 3 us. *)
  let _ =
    Engine.spawn eng ~name:"feeder" (fun () ->
        let slot = Decima.make_slot () in
        for _ = 1 to 5 do
          Decima.hook_begin d slot;
          Engine.compute 1_000;
          Decima.hook_end d ~task:1 slot;
          Decima.hook_begin d slot;
          Engine.compute 3_000;
          Decima.hook_end d ~task:2 slot
        done)
  in
  ignore (Engine.run eng);
  let seqish = Task.sequential ~name:"s" (fun _ -> Task_status.Complete) in
  let par n = Task.parallel ~name:n (fun _ -> Task_status.Complete) in
  let pd = Task.descriptor ~name:"p" [ seqish; par "a"; par "b"; seqish ] in
  let dops = Mech.Tbf.proportional_dops pd d 8 in
  check_int "seq stays 1" 1 dops.(0);
  check_int "fast stage gets 1/4" 2 dops.(1);
  check_int "slow stage gets 3/4" 6 dops.(2);
  (* Imbalance: (3 - 1) / 3 = 0.67 > 0.5. *)
  check_bool "imbalance detected" true (Mech.Tbf.imbalance_of pd d > 0.5)

(* ----------------------------- SEDA ---------------------------- *)

let test_seda_grows_loaded_stages () =
  let eng = Engine.create machine in
  let q_len = ref 0.0 in
  let region, stop = make_trivial_region ~load:(fun () -> !q_len) eng ~dop:1 in
  let mech = Mech.Seda.make ~threshold:5.0 ~max_per_stage:3 () in
  q_len := 2.0;
  check_bool "below threshold: no growth" true (mech region = None);
  q_len := 9.0;
  (match mech region with
  | Some p ->
      check_int "grew by one" 2 (Config.dops p.Morta.cfg).(0);
      Alcotest.(check string) "seda reason" "queue_threshold" p.Morta.why
  | None -> Alcotest.fail "expected growth");
  stop := true;
  ignore (Engine.run eng)

let test_seda_respects_cap () =
  let eng = Engine.create machine in
  let q_len = ref 100.0 in
  let region, stop = make_trivial_region ~load:(fun () -> !q_len) eng ~dop:3 in
  let mech = Mech.Seda.make ~threshold:5.0 ~max_per_stage:3 () in
  check_bool "at cap: no growth" true (mech region = None);
  stop := true;
  ignore (Engine.run eng)

(* --------------------------- Static ---------------------------- *)

let test_static_never_changes () =
  let eng = Engine.create machine in
  let region, stop = make_trivial_region eng ~dop:4 in
  for _ = 1 to 5 do
    check_bool "static proposes nothing" true (Mech.Static.mechanism region = None)
  done;
  stop := true;
  ignore (Engine.run eng)

let suite =
  [
    Alcotest.test_case "wqt-h: hysteresis state machine" `Quick test_wqt_h_hysteresis;
    Alcotest.test_case "wq-linear: equation 6.1" `Quick test_wq_linear_formula;
    Alcotest.test_case "tbf: proportional allocation" `Quick test_tbf_proportional;
    Alcotest.test_case "seda: grows loaded stages" `Quick test_seda_grows_loaded_stages;
    Alcotest.test_case "seda: respects per-stage cap" `Quick test_seda_respects_cap;
    Alcotest.test_case "static: never changes" `Quick test_static_never_changes;
  ]
