(* The scheduler observatory: timeline partition invariants, attribution
   clamping, critical-path analysis on hand-built traces with known
   answers, the Runtime_events cursor lifecycle, and the doctor's
   self-check — its measured speedup must land on its own critical-path
   bound on the deterministic simulator. *)

module Machine = Parcae_sim.Machine
module Timeline = Parcae_obs.Timeline
module Critpath = Parcae_obs.Critpath
module Runtime_ev = Parcae_obs.Runtime_ev
module Event = Parcae_obs.Event
module Doctor = Parcae_workloads.Doctor

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let sum_by_state (b : Timeline.lane_breakdown) = Array.fold_left ( + ) 0 b.Timeline.by_state
let share_sum (b : Timeline.lane_breakdown) = Array.fold_left ( +. ) 0.0 b.Timeline.shares

(* ---- timeline: live transitions partition wall time exactly ---- *)

let test_partition () =
  let tl = Timeline.create ~lanes:2 ~now:0 () in
  Timeline.enter tl ~lane:0 ~now:100 Timeline.Run;
  Timeline.enter tl ~lane:0 ~now:350 Timeline.Steal_search;
  Timeline.enter tl ~lane:0 ~now:400 Timeline.Run;
  Timeline.enter tl ~lane:1 ~now:50 Timeline.Run;
  let bds = Timeline.breakdown tl ~until:1000 in
  Array.iter
    (fun b ->
      check_int "by_state sums to wall" b.Timeline.wall_ns (sum_by_state b);
      Alcotest.(check (float 0.0001)) "shares sum to 1" 1.0 (share_sum b))
    bds;
  let b0 = bds.(0) in
  check_int "lane 0 run ns" (250 + 600) b0.Timeline.by_state.(Timeline.state_index Timeline.Run);
  check_int "lane 0 park ns" 100 b0.Timeline.by_state.(Timeline.state_index Timeline.Park);
  check_int "lane 0 steal ns" 50
    b0.Timeline.by_state.(Timeline.state_index Timeline.Steal_search)

(* Spans are contiguous and non-overlapping: each closed span ends where
   the next begins, and same-state transitions merge instead of splitting. *)
let test_spans_contiguous () =
  let tl = Timeline.create ~lanes:1 ~now:0 () in
  Timeline.enter tl ~lane:0 ~now:10 Timeline.Run;
  Timeline.enter tl ~lane:0 ~now:20 Timeline.Run;
  (* merge: no-op *)
  Timeline.enter tl ~lane:0 ~now:30 Timeline.Park;
  Timeline.enter tl ~lane:0 ~now:25 Timeline.Run;
  (* racing clock: clamped to 30 *)
  let spans = Timeline.spans tl ~lane:0 in
  check_int "closed spans" 3 (List.length spans);
  List.iter
    (fun (s : Timeline.span) ->
      check_bool "span non-negative" true (s.Timeline.s_t1 >= s.Timeline.s_t0))
    spans;
  let rec pairwise = function
    | a :: (b :: _ as rest) ->
        check_int "contiguous" a.Timeline.s_t1 b.Timeline.s_t0;
        pairwise rest
    | _ -> ()
  in
  pairwise spans

let test_ring_overflow () =
  let tl = Timeline.create ~capacity:4 ~lanes:1 ~now:0 () in
  for i = 1 to 10 do
    Timeline.enter tl ~lane:0 ~now:(i * 10)
      (if i mod 2 = 0 then Timeline.Run else Timeline.Park)
  done;
  (* 9 transitions close 9 spans; the ring keeps 4. *)
  check_int "spans retained" 4 (List.length (Timeline.spans tl ~lane:0));
  check_int "drops counted" 5 (Timeline.span_drops tl ~lane:0);
  (* The accumulators stay exact regardless of ring drops. *)
  let b = (Timeline.breakdown tl ~until:100).(0) in
  check_int "wall exact despite drops" 100 (sum_by_state b)

(* ---- attribution: zero-sum, clamped at donor holdings ---- *)

let test_attribute_clamp () =
  let tl = Timeline.create ~lanes:1 ~now:0 () in
  Timeline.enter tl ~lane:0 ~now:600 Timeline.Run;
  (* 600 park, then 400 run *)
  (* Over-report: 10x more chan wait than the lane's idle time.  Waits
     draw from idle states only, so Run's 400ns must survive. *)
  Timeline.attribute tl ~lane:0 Timeline.Chan_wait 6000;
  let b = (Timeline.breakdown tl ~until:1000).(0) in
  check_int "partition survives over-attribution" 1000 (sum_by_state b);
  check_int "chan_wait clamped to idle holdings" 600
    b.Timeline.by_state.(Timeline.state_index Timeline.Chan_wait);
  check_int "run untouched by wait attribution" 400
    b.Timeline.by_state.(Timeline.state_index Timeline.Run)

let test_attribute_gc_takes_run_first () =
  let tl = Timeline.create ~lanes:1 ~now:0 () in
  Timeline.enter tl ~lane:0 ~now:200 Timeline.Run;
  (* 200 park, 800 run *)
  Timeline.attribute tl ~lane:0 Timeline.Gc 300;
  let b = (Timeline.breakdown tl ~until:1000).(0) in
  check_int "gc" 300 b.Timeline.by_state.(Timeline.state_index Timeline.Gc);
  check_int "gc displaced run" 500 b.Timeline.by_state.(Timeline.state_index Timeline.Run);
  check_int "park kept" 200 b.Timeline.by_state.(Timeline.state_index Timeline.Park);
  check_int "partition" 1000 (sum_by_state b)

(* ---- critical path on hand-built traces with known answers ---- *)

let ev t kind = Event.make ~t kind

(* Producer computes 100ns then sends; consumer computes 10ns before the
   receive and 40ns after.  Path: producer's 100 + consumer's post-recv 40. *)
let test_critpath_pipeline () =
  let events =
    [
      ev 0 (Event.Task_spawn { task = 1; parent = -1; name = "p" });
      ev 1 (Event.Task_spawn { task = 2; parent = -1; name = "c" });
      ev 2 (Event.Chan_send_ev { chan = "q"; seq = 0; task = 1; busy_ns = 100 });
      ev 3 (Event.Chan_recv_ev { chan = "q"; seq = 0; task = 2; busy_ns = 10 });
      ev 4 (Event.Task_done { task = 1; busy_ns = 100 });
      ev 5 (Event.Task_done { task = 2; busy_ns = 50 });
    ]
  in
  let r = Critpath.analyze events in
  check_int "total work" 150 r.Critpath.total_work_ns;
  check_int "critical path" 140 r.Critpath.critical_path_ns;
  check_int "tasks" 2 r.Critpath.tasks;
  check_int "edges" 1 r.Critpath.edges;
  check_int "unmatched" 0 r.Critpath.unmatched_recvs;
  Alcotest.(check (option string)) "bottleneck" (Some "p") (Critpath.bottleneck r);
  Alcotest.(check (float 0.001)) "bound" (150.0 /. 140.0) r.Critpath.bound

(* Two independent 100ns children under a 0-work parent: perfectly
   parallel, bound = 2. *)
let test_critpath_fanout () =
  let events =
    [
      ev 0 (Event.Task_spawn { task = 1; parent = -1; name = "main" });
      ev 1 (Event.Task_spawn { task = 2; parent = 1; name = "a" });
      ev 2 (Event.Task_spawn { task = 3; parent = 1; name = "b" });
      ev 3 (Event.Task_done { task = 2; busy_ns = 100 });
      ev 4 (Event.Task_done { task = 3; busy_ns = 100 });
      ev 5 (Event.Task_done { task = 1; busy_ns = 0 });
    ]
  in
  let r = Critpath.analyze events in
  check_int "total work" 200 r.Critpath.total_work_ns;
  check_int "critical path" 100 r.Critpath.critical_path_ns;
  Alcotest.(check (float 0.001)) "bound" 2.0 r.Critpath.bound;
  (* The winning chain is entirely one child's compute (ties keep the
     first chain considered), so it dominates its own path. *)
  Alcotest.(check (option string)) "bottleneck" (Some "a") (Critpath.bottleneck r)

(* A receive whose send fell outside the trace is skipped, not fatal. *)
let test_critpath_unmatched () =
  let events =
    [
      ev 0 (Event.Task_spawn { task = 1; parent = -1; name = "c" });
      ev 1 (Event.Chan_recv_ev { chan = "q"; seq = 7; task = 1; busy_ns = 5 });
      ev 2 (Event.Task_done { task = 1; busy_ns = 30 });
    ]
  in
  let r = Critpath.analyze events in
  check_int "unmatched recv counted" 1 r.Critpath.unmatched_recvs;
  check_int "chain still bounds" 30 r.Critpath.critical_path_ns

(* ---- Runtime_events cursor lifecycle ---- *)

let test_cursor_lifecycle () =
  let n0 = Runtime_ev.live_cursors () in
  let t = Runtime_ev.start () in
  check_int "cursor live" (n0 + 1) (Runtime_ev.live_cursors ());
  ignore (Runtime_ev.poll t);
  Runtime_ev.stop t;
  check_int "cursor freed" n0 (Runtime_ev.live_cursors ());
  Runtime_ev.stop t;
  (* idempotent *)
  check_int "double stop safe" n0 (Runtime_ev.live_cursors ())

(* ---- the doctor ---- *)

(* On the deterministic simulator the doctor's measured speedup must hit
   its own critical-path bound once the DoP saturates the workload (the
   curve flattens at the bound, not below it), and every lane's shares
   must sum to 1 at every DoP. *)
let test_doctor_sim_bound () =
  let r =
    Doctor.run ~items:60 ~work_ns:200_000 ~dops:[ 1; 8 ]
      ~backend:(`Sim Machine.xeon_x7460) ()
  in
  check_int "leak-free" 0 r.Doctor.leaked_cursors;
  List.iter
    (fun (d : Doctor.dop_result) ->
      Array.iter
        (fun b ->
          Alcotest.(check (float 0.01))
            (Printf.sprintf "dop %d lane shares sum to 1" d.Doctor.dop)
            1.0 (share_sum b))
        d.Doctor.lanes)
    r.Doctor.results;
  match List.rev r.Doctor.results with
  | [] -> Alcotest.fail "no results"
  | last :: _ ->
      let bound = last.Doctor.crit.Critpath.bound in
      check_bool
        (Printf.sprintf "saturated: measured %.3f within 10%% of bound %.3f"
           last.Doctor.speedup bound)
        true
        (Float.abs (last.Doctor.speedup -. bound) /. bound < 0.10)

(* With the pool pinned to one domain, the doctor must attribute the flat
   native curve to the spawned-domains shortfall — and leak nothing. *)
let test_doctor_native_shortfall () =
  let r =
    Doctor.run ~items:20 ~work_ns:100_000 ~dops:[ 1; 2 ] ~backend:(`Native (Some 1)) ()
  in
  check_int "leak-free" 0 r.Doctor.leaked_cursors;
  check_bool "D101 diagnosed" true
    (List.exists (fun (f : Doctor.finding) -> f.Doctor.code = "D101") r.Doctor.findings);
  List.iter
    (fun (d : Doctor.dop_result) ->
      Array.iter
        (fun b ->
          Alcotest.(check (float 0.01)) "native lane shares sum to 1" 1.0 (share_sum b))
        d.Doctor.lanes)
    r.Doctor.results

let suite =
  [
    ("timeline: states partition wall time", `Quick, test_partition);
    ("timeline: spans contiguous, merged, clamped", `Quick, test_spans_contiguous);
    ("timeline: ring overflow counts drops, totals exact", `Quick, test_ring_overflow);
    ("timeline: wait attribution clamps to idle", `Quick, test_attribute_clamp);
    ("timeline: gc attribution displaces run", `Quick, test_attribute_gc_takes_run_first);
    ("critpath: pipeline with known answer", `Quick, test_critpath_pipeline);
    ("critpath: perfect fan-out bound", `Quick, test_critpath_fanout);
    ("critpath: unmatched recv tolerated", `Quick, test_critpath_unmatched);
    ("runtime_ev: cursor lifecycle is leak-free", `Quick, test_cursor_lifecycle);
    ("doctor: sim speedup matches own bound", `Quick, test_doctor_sim_bound);
    ("doctor: native shortfall diagnosed at pool=1", `Quick, test_doctor_native_shortfall);
  ]
