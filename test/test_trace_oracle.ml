(* Trace-oracle property tests: every workload of Table 8.2 is run under
   the closed-loop controller and under each Chapter 6 administrator
   mechanism with tracing on, and every resulting trace must satisfy the
   runtime-protocol invariant checker.  This turns each workload run into
   a protocol test: FSM transitions per Figure 6.3, pause/resume pairing
   with channel flushes in between (Section 4.5), budgets respected under
   the controller, and daemon shares within the platform total. *)

open Parcae_sim

(* Engine/value types come from the platform dispatch layer (the runtime's
   own types); [Machine]/[Power]/etc. remain from [Parcae_sim] above. *)
module Engine = Parcae_platform.Engine
module Chan = Parcae_platform.Chan
module Lock = Parcae_platform.Lock
module Barrier = Parcae_platform.Barrier
open Parcae_workloads
module Obs = Parcae_obs
module Sink = Obs.Sink
module Trace = Obs.Trace
module Oracle = Obs.Oracle
module R = Parcae_runtime
module Mech = Parcae_mechanisms
module Rng = Parcae_util.Rng

let check_bool = Alcotest.(check bool)

let machine = Machine.xeon_x7460
let requests = 25

(* The six workloads; [flat] selects the flat-pipeline config/mechanism
   variants, as in bin/parcae_demo. *)
let workloads : (string * (budget:int -> Engine.t -> App.t) * bool) list =
  [
    ("bzip", (fun ~budget eng -> Bzip.make ~budget eng), false);
    ("swaptions", (fun ~budget eng -> Swaptions.make ~budget eng), false);
    ("transcode", (fun ~budget eng -> Transcode.make ~budget eng), false);
    ("gimp_oilify", (fun ~budget eng -> Gimp_oilify.make ~budget eng), false);
    ("ferret", (fun ~budget eng -> Ferret.make ~budget eng), true);
    ("dedup", (fun ~budget eng -> Dedup.make ~budget eng), true);
  ]

let mechanisms = [ "wqt-h"; "wq-linear"; "tbf"; "fdp"; "seda"; "tpc" ]

let mechanism_for name (flat : bool) : App.t -> R.Morta.mechanism =
  match name with
  | "wqt-h" ->
      fun app ->
        if flat then
          Mech.Wqt_h.make ~load:app.App.wq_load ~threshold:6.0 ~non:2 ~noff:2
            ~light:(App.config app "even") ~heavy:(App.config app "oversubscribed") ()
        else
          Mech.Wqt_h.make ~load:app.App.wq_load ~threshold:8.0 ~non:3 ~noff:3
            ~light:(App.config app "inner-max") ~heavy:(App.config app "outer-only") ()
  | "wq-linear" ->
      fun app ->
        if flat then
          Mech.Wq_linear.per_task ~loads:app.App.per_task_loads ~per_item:0.6 ~dpmin:2 ~dpmax:24 ()
        else
          Mech.Wq_linear.nested ~load:app.App.wq_load ~dpmin:1 ~dpmax:app.App.dpmax ~qmax:20.0
            ~make_config:(Option.get app.App.inner_dop_config) ()
  | "tbf" -> fun app -> Mech.Tbf.make ?fused_choice:app.App.fused_choice ()
  | "fdp" -> fun _ -> Mech.Fdp.make ()
  | "seda" -> fun _ -> Mech.Seda.make ~threshold:6.0 ~max_per_stage:8 ()
  | "tpc" ->
      fun app ->
        let sim_eng = Option.get (Engine.sim_engine app.App.eng) in
        let sensor = Power.create ~period_ns:2_000_000_000 sim_eng in
        Mech.Tpc.make ~sensor ~target_watts:(0.9 *. Machine.peak_power (Engine.machine app.App.eng)) ()
  | s -> failwith ("unknown mechanism " ^ s)

let assert_ok label result =
  match result with
  | Ok _ -> ()
  | Error vs ->
      Alcotest.fail
        (Printf.sprintf "%s: %d violation(s)\n%s" label (List.length vs)
           (Oracle.violations_to_string vs))

(* --------------------- mechanisms over workloads --------------------- *)

let run_under_mechanism mk flat mech_name =
  let sink = Sink.create ~capacity:500_000 () in
  let config = if flat then `Named "even" else `Named "outer-only" in
  let r, _, _ =
    Trace.with_sink sink (fun () ->
        Experiments.run_batch ~m:requests ~seed:5 ~machine
          ~mechanism:(mechanism_for mech_name flat) ~config mk)
  in
  (r, sink)

let test_mechanisms_satisfy_oracle (name, mk, flat) () =
  List.iter
    (fun mech_name ->
      let r, sink = run_under_mechanism mk flat mech_name in
      check_bool
        (Printf.sprintf "%s/%s completed requests" name mech_name)
        true
        (r.Experiments.completed > 0);
      (* Administrator mechanisms may deliberately oversubscribe the
         budget (WQT-H's heavy mode), so budget conformance is off; the
         flush protocol is mandatory for these channel workloads. *)
      assert_ok
        (Printf.sprintf "%s/%s" name mech_name)
        (Oracle.check ~require_flush:true (Sink.events sink)))
    mechanisms

(* -------------------- controller over workloads ---------------------- *)

let controller_params =
  {
    R.Controller.default_params with
    R.Controller.nseq = 4;
    poll_ns = 100_000;
    monitor_ns = 50_000_000;
    change_frac = 0.3;
  }

let test_controller_satisfies_oracle (name, mk, flat) () =
  let sink = Sink.create ~capacity:500_000 () in
  let events =
    Trace.with_sink sink (fun () ->
        let eng = Engine.create machine in
        let app : App.t = mk ~budget:machine.Machine.cores eng in
        let rng = Rng.create 9 in
        ignore
          (Load_gen.spawn_batch ~rng ~m:requests ~queue:app.App.queue ~metrics:app.App.metrics eng);
        let region =
          R.Executor.launch ~budget:machine.Machine.cores ~name:app.App.name eng app.App.schemes
            app.App.default_config ~on_pause:app.App.on_pause ~on_reset:app.App.on_reset
        in
        ignore (R.Controller.spawn eng (R.Controller.create ~params:controller_params region));
        let horizon = (requests * app.App.seq_request_ns) + 60_000_000_000 in
        ignore (Engine.run ~until:horizon eng);
        Sink.events sink)
  in
  check_bool (name ^ ": trace captured") true (List.length events > 3);
  (* The closed-loop controller must flush channels on every
     reconfiguration, and on the two-level servers stay within the region
     budget too.  The flat pipelines' "even" launch config rounds
     per-stage shares up and may exceed the budget by rounding, so budget
     conformance is only asserted for the two-level workloads. *)
  assert_ok (name ^ "/controller")
    (Oracle.check ~require_flush:true ~check_budget:(not flat) events)

let suite =
  List.concat_map
    (fun ((name, _, _) as w) ->
      [
        Alcotest.test_case
          (Printf.sprintf "%s: controller trace satisfies oracle" name)
          `Quick (test_controller_satisfies_oracle w);
        Alcotest.test_case
          (Printf.sprintf "%s: mechanism traces satisfy oracle" name)
          `Quick (test_mechanisms_satisfy_oracle w);
      ])
    workloads
