(* Work-stealing deque tests: property stress under real domain
   contention, plus a seeded model-checking-style enumeration of small
   single-threaded interleavings against a sequential model.

   The deque under test is the Chase-Lev structure every native worker
   owns (lib/native/deque.ml).  Its contract:

   - owner [push]/[pop] work LIFO at the bottom;
   - thieves [steal] FIFO at the top, losing a CAS race as [Contended]
     rather than blocking;
   - every pushed element is obtained exactly once, by the owner or by
     exactly one thief, never both, never dropped — including the
     single-element race where owner and thief target the same cell.

   Concurrent tests spawn real domains.  On a single-core host the
   domains time-slice rather than run in parallel; the exactly-once and
   monotone-steal properties must hold regardless, and the suite stays
   meaningful (if slower-to-interleave) there. *)

module Deque = Parcae_native.Deque

(* ------------------------------------------------------------------ *)
(* Sequential model: the deque as a list, head = top (oldest, where    *)
(* thieves take), tail end = bottom (newest, where the owner works).   *)
(* ------------------------------------------------------------------ *)

type op = Push of int | Pop | Steal

let model_apply model = function
  | Push v -> (model @ [ v ], `Unit)
  | Pop -> (
      match List.rev model with
      | [] -> ([], `Popped None)
      | v :: rest -> (List.rev rest, `Popped (Some v)))
  | Steal -> (
      match model with
      | [] -> ([], `Stolen None)
      | v :: rest -> (rest, `Stolen (Some v)))

(* Run one op against the real deque.  Single-threaded, so [Contended]
   is a contract violation: the steal CAS can only lose to a concurrent
   operation, and there is none. *)
let real_apply dq = function
  | Push v ->
      Deque.push dq v;
      `Unit
  | Pop -> `Popped (Deque.pop dq)
  | Steal -> (
      match Deque.steal dq with
      | Deque.Stolen v -> `Stolen (Some v)
      | Deque.Empty -> `Stolen None
      | Deque.Contended -> Alcotest.fail "steal returned Contended with no contention")

let show_op = function
  | Push v -> Printf.sprintf "push %d" v
  | Pop -> "pop"
  | Steal -> "steal"

let show_script ops = String.concat "; " (List.map show_op ops)

(* ------------------------------------------------------------------ *)
(* Model check: enumerate ALL interleavings of a small owner script    *)
(* (pushes/pops, program order preserved) with a thief script (steals) *)
(* and require each interleaving, executed sequentially, to match the  *)
(* model step by step.  This is the exhaustive part: for these sizes   *)
(* every reachable op ordering is covered, not a random sample.        *)
(* ------------------------------------------------------------------ *)

let rec interleavings xs ys =
  match (xs, ys) with
  | [], ys -> [ ys ]
  | xs, [] -> [ xs ]
  | x :: xs', y :: ys' ->
      List.map (fun t -> x :: t) (interleavings xs' ys)
      @ List.map (fun t -> y :: t) (interleavings xs ys')

let check_script ops =
  let dq = Deque.create () in
  let model = ref [] in
  List.iter
    (fun op ->
      let m', expected = model_apply !model op in
      model := m';
      let got = real_apply dq op in
      if got <> expected then
        Alcotest.failf "divergence from model at [%s] on '%s'" (show_script ops)
          (show_op op))
    ops;
  Alcotest.(check int)
    (Printf.sprintf "final size after [%s]" (show_script ops))
    (List.length !model) (Deque.size dq)

(* A deterministic owner script from a seed: mostly pushes with
   interspersed pops, values globally unique so exactly-once is
   checkable by value. *)
let gen_owner_script rng len =
  let next = ref 0 in
  List.init len (fun _ ->
      if Random.State.int rng 3 < 2 then begin
        let v = !next in
        incr next;
        Push v
      end
      else Pop)

let test_model_enumeration () =
  (* 6 owner ops x 3 steals: C(9,3) = 84 interleavings per seed; 12
     seeds of distinct scripts.  ~1000 full executions, all cheap. *)
  let seeds = List.init 12 (fun i -> 41 + i) in
  let total = ref 0 in
  List.iter
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let owner = gen_owner_script rng 6 in
      let thief = [ Steal; Steal; Steal ] in
      List.iter
        (fun script ->
          incr total;
          check_script script)
        (interleavings owner thief))
    seeds;
  Alcotest.(check bool) "enumerated interleavings" true (!total > 900)

(* ------------------------------------------------------------------ *)
(* Deterministic order invariants.                                     *)
(* ------------------------------------------------------------------ *)

let test_owner_lifo () =
  let dq = Deque.create () in
  for i = 0 to 15 do
    Deque.push dq i
  done;
  for i = 15 downto 0 do
    Alcotest.(check (option int)) "LIFO pop" (Some i) (Deque.pop dq)
  done;
  Alcotest.(check (option int)) "empty after drain" None (Deque.pop dq)

let test_steal_fifo () =
  let dq = Deque.create () in
  for i = 0 to 15 do
    Deque.push dq i
  done;
  for i = 0 to 15 do
    match Deque.steal dq with
    | Deque.Stolen v -> Alcotest.(check int) "FIFO steal" i v
    | Deque.Empty | Deque.Contended -> Alcotest.fail "steal failed on non-empty deque"
  done;
  Alcotest.(check bool) "empty after steals" true (Deque.is_empty dq)

let test_growth () =
  (* Push far past the initial capacity to force buffer growth (and a
     second growth), then verify nothing was lost or reordered. *)
  let n = 500 in
  let dq = Deque.create () in
  for i = 0 to n - 1 do
    Deque.push dq i
  done;
  Alcotest.(check int) "size after growth" n (Deque.size dq);
  (* Mixed drain: alternate steal (top) and pop (bottom). *)
  let top = ref 0 and bot = ref (n - 1) in
  while !top <= !bot do
    (match Deque.steal dq with
    | Deque.Stolen v ->
        Alcotest.(check int) "steal order across growth" !top v;
        incr top
    | Deque.Empty | Deque.Contended -> Alcotest.fail "steal failed mid-drain");
    if !top <= !bot then
      match Deque.pop dq with
      | Some v ->
          Alcotest.(check int) "pop order across growth" !bot v;
          decr bot
      | None -> Alcotest.fail "pop failed mid-drain"
  done;
  Alcotest.(check bool) "drained" true (Deque.is_empty dq)

(* ------------------------------------------------------------------ *)
(* Concurrent stress: owner domain pushing/popping while N thief       *)
(* domains steal.  Properties checked:                                 *)
(*   1. exactly-once: {owner pops} ∪ {steals} = {pushed}, disjoint;    *)
(*   2. per-thief steal sequences are strictly increasing (steals      *)
(*      take from the top, which only advances through older-to-newer  *)
(*      push indices);                                                 *)
(*   3. the deque ends empty and reports size 0.                       *)
(* ------------------------------------------------------------------ *)

let stress_run ~n ~thieves ~seed =
  let dq = Deque.create () in
  let stop = Atomic.make false in
  let thief_domains =
    Array.init thieves (fun _ ->
        Domain.spawn (fun () ->
            let acc = ref [] in
            while not (Atomic.get stop) do
              match Deque.steal dq with
              | Deque.Stolen v -> acc := v :: !acc
              | Deque.Empty | Deque.Contended -> Domain.cpu_relax ()
            done;
            (* Final drain so nothing the owner left behind is counted
               as lost; [Contended] means another thief is mid-steal,
               so retry rather than exit. *)
            let rec drain () =
              match Deque.steal dq with
              | Deque.Stolen v ->
                  acc := v :: !acc;
                  drain ()
              | Deque.Contended ->
                  Domain.cpu_relax ();
                  drain ()
              | Deque.Empty -> ()
            in
            drain ();
            List.rev !acc))
  in
  let rng = Random.State.make [| seed |] in
  let popped = ref [] in
  let next = ref 0 in
  while !next < n do
    if Random.State.int rng 4 < 3 then begin
      Deque.push dq !next;
      incr next
    end
    else
      match Deque.pop dq with
      | Some v -> popped := v :: !popped
      | None -> Domain.cpu_relax ()
  done;
  Atomic.set stop true;
  let stolen = Array.map Domain.join thief_domains in
  (* Owner drains anything the thieves' final sweep raced past. *)
  let rec drain () =
    match Deque.pop dq with
    | Some v ->
        popped := v :: !popped;
        drain ()
    | None -> ()
  in
  drain ();
  (!popped, stolen, Deque.size dq)

let check_stress ~n ~thieves ~seed =
  let popped, stolen, final_size = stress_run ~n ~thieves ~seed in
  if final_size <> 0 then
    QCheck.Test.fail_reportf "deque not empty after drain: size %d" final_size;
  Array.iter
    (fun seq ->
      let rec mono = function
        | a :: (b :: _ as rest) ->
            if a >= b then
              QCheck.Test.fail_reportf "thief steal sequence not increasing: %d then %d" a b;
            mono rest
        | _ -> ()
      in
      mono seq)
    stolen;
  let all = List.concat (popped :: Array.to_list stolen) in
  let sorted = List.sort compare all in
  let expected = List.init n Fun.id in
  if sorted <> expected then begin
    let count = List.length all in
    let module IS = Set.Make (Int) in
    let dup = count - IS.cardinal (IS.of_list all) in
    QCheck.Test.fail_reportf
      "exactly-once violated: %d obtained of %d pushed (%d duplicates)" count n dup
  end;
  true

let prop_stress_exactly_once =
  QCheck.Test.make ~count:8 ~name:"deque: exactly-once under concurrent stealing"
    QCheck.(
      make
        Gen.(
          triple (int_range 200 800) (int_range 1 3) (int_range 0 1_000_000)))
    (fun (n, thieves, seed) -> check_stress ~n ~thieves ~seed)

(* A fixed heavier run with more thieves than cores on most CI hosts, so
   the single-element owner-vs-thief race actually fires. *)
let test_stress_heavy () =
  for seed = 1 to 3 do
    ignore (check_stress ~n:2_000 ~thieves:4 ~seed : bool)
  done

let suite =
  [
    Alcotest.test_case "deque: owner pop is LIFO" `Quick test_owner_lifo;
    Alcotest.test_case "deque: steal is FIFO" `Quick test_steal_fifo;
    Alcotest.test_case "deque: survives buffer growth" `Quick test_growth;
    Alcotest.test_case "deque: exhaustive small interleavings vs model" `Quick
      test_model_enumeration;
    QCheck_alcotest.to_alcotest prop_stress_exactly_once;
    Alcotest.test_case "deque: heavy stress, 4 thieves" `Slow test_stress_heavy;
  ]
