(* Unit tests for the core API types: configurations (including nested
   thread accounting), descriptor validation, the pipeline sentinel
   protocol primitives, and the machine/power model. *)

open Parcae_sim

(* Engine/value types come from the platform dispatch layer (the runtime's
   own types); [Machine]/[Power]/etc. remain from [Parcae_sim] above. *)
module Engine = Parcae_platform.Engine
module Chan = Parcae_platform.Chan
module Lock = Parcae_platform.Lock
module Barrier = Parcae_platform.Barrier
open Parcae_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------------------------- Config ---------------------------- *)

let test_config_threads_nested () =
  (* <(3, DOALL), (8, PIPE)>: 3 outer workers each driving an inner team
     of 8 keeps 24 threads busy (the paper's k x l). *)
  let inner = Config.make [ Config.seq_task; Config.task 6; Config.seq_task ] in
  let cfg = Config.make [ Config.task ~nested:inner 3 ] in
  check_int "inner threads" 8 (Config.threads inner);
  check_int "k x l" 24 (Config.threads cfg)

let test_config_validate () =
  Alcotest.check_raises "dop 0 rejected" (Invalid_argument "Config.validate: dop must be >= 1")
    (fun () -> Config.validate (Config.make [ Config.task 0 ]))

let test_config_to_string () =
  let cfg = Config.make ~choice:2 [ Config.seq_task; Config.task 5 ] in
  Alcotest.(check string) "render" "#2<1, 5>" (Config.to_string cfg)

let test_config_equal () =
  let a = Config.make [ Config.task 3; Config.seq_task ] in
  let b = Config.make [ Config.task 3; Config.seq_task ] in
  check_bool "structural equality" true (Config.equal a b);
  check_bool "dop difference detected" false (Config.equal a (Config.with_dop b 0 4));
  check_bool "choice difference detected" false
    (Config.equal a { b with Config.choice = 1 })

(* ----------------------------- Task ----------------------------- *)

let dummy_task ttype name = Task.create ~ttype ~name (fun _ -> Task_status.Complete)

let test_descriptor_master () =
  let a = dummy_task Task.Seq "a" and b = dummy_task Task.Par "b" in
  let pd = Task.descriptor ~name:"p" [ a; b ] in
  check_bool "first task is master" true (Task.is_master pd a);
  check_bool "second is not" false (Task.is_master pd b);
  check_int "arity" 2 (Task.arity pd)

let test_validate_config_rejects_seq_dop () =
  let pd = Task.descriptor ~name:"p" [ dummy_task Task.Seq "s"; dummy_task Task.Par "p" ] in
  Task.validate_config pd (Config.make [ Config.seq_task; Config.task 4 ]);
  Alcotest.check_raises "seq task with dop 2" (Invalid_argument "s: sequential task requires dop = 1")
    (fun () -> Task.validate_config pd (Config.make [ Config.task 2; Config.task 4 ]))

let test_validate_config_rejects_arity () =
  let pd = Task.descriptor ~name:"pd" [ dummy_task Task.Par "x" ] in
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "config for pd: 2 task configs for 1 tasks") (fun () ->
      Task.validate_config pd (Config.make [ Config.task 1; Config.task 1 ]))

let test_validate_config_rejects_undeclared_nested () =
  let pd = Task.descriptor ~name:"pd" [ dummy_task Task.Par "x" ] in
  let cfg = Config.make [ Config.task ~nested:(Config.make [ Config.task 2 ]) 2 ] in
  Alcotest.check_raises "nested without declaration"
    (Invalid_argument "x: no nested parallelism declared") (fun () ->
      Task.validate_config pd cfg)

let test_default_config () =
  let pd =
    Task.descriptor ~name:"p" [ dummy_task Task.Seq "a"; dummy_task Task.Par "b" ]
  in
  let cfg = Task.default_config pd in
  Alcotest.(check (array int)) "all ones" [| 1; 1 |] (Config.dops cfg);
  Task.validate_config pd cfg

(* --------------------------- Pipeline --------------------------- *)

let test_pipeline_reset_keeps_items_and_eos () =
  let eng = Engine.create (Machine.test_machine ()) in
  let ch = Chan.create eng "c" in
  let remaining = ref (-1) in
  let _ =
    Engine.spawn eng ~name:"t" (fun () ->
        Pipeline.send ch 1;
        Pipeline.inject_flush ch;
        Pipeline.send ch 2;
        Pipeline.inject_eos ch;
        Pipeline.inject_flush ch;
        Pipeline.reset_channel ch;
        remaining := Chan.length ch)
  in
  ignore (Engine.run eng);
  (* 2 items + 1 eos survive; 2 flushes stripped. *)
  check_int "flushes stripped only" 3 !remaining

let test_forward_to () =
  let eng = Engine.create (Machine.test_machine ()) in
  let ch = Chan.create eng "c" in
  let ok = ref false in
  let _ =
    Engine.spawn eng ~name:"t" (fun () ->
        Pipeline.forward_to ch Pipeline.S_flush;
        Pipeline.forward_to ch Pipeline.S_eos;
        let a = Chan.recv ch and b = Chan.recv ch in
        ok := a = Pipeline.Flush && b = Pipeline.Eos)
  in
  ignore (Engine.run eng);
  check_bool "sentinels in order" true !ok

(* ---------------------------- Machine ---------------------------- *)

let test_machine_power () =
  let m = Machine.xeon_x7460 in
  Alcotest.(check (float 1e-9)) "idle" m.Machine.idle_power (Machine.power m ~busy:0);
  Alcotest.(check (float 1e-9)) "peak"
    (m.Machine.idle_power +. (24.0 *. m.Machine.core_power))
    (Machine.peak_power m);
  check_int "cores" 24 m.Machine.cores;
  check_int "platform 1 cores" 8 Machine.xeon_e5310.Machine.cores

let suite =
  [
    Alcotest.test_case "config: nested thread accounting" `Quick test_config_threads_nested;
    Alcotest.test_case "config: validate" `Quick test_config_validate;
    Alcotest.test_case "config: to_string" `Quick test_config_to_string;
    Alcotest.test_case "config: equality" `Quick test_config_equal;
    Alcotest.test_case "task: descriptor/master" `Quick test_descriptor_master;
    Alcotest.test_case "task: seq dop validation" `Quick test_validate_config_rejects_seq_dop;
    Alcotest.test_case "task: arity validation" `Quick test_validate_config_rejects_arity;
    Alcotest.test_case "task: nested declaration" `Quick test_validate_config_rejects_undeclared_nested;
    Alcotest.test_case "task: default config" `Quick test_default_config;
    Alcotest.test_case "pipeline: reset keeps items+eos" `Quick test_pipeline_reset_keeps_items_and_eos;
    Alcotest.test_case "pipeline: forward_to" `Quick test_forward_to;
    Alcotest.test_case "machine: power model" `Quick test_machine_power;
  ]
