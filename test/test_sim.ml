(* Tests for the discrete-event multicore simulator: clock behaviour,
   scheduling and preemption, channels, locks, barriers, power accounting,
   and determinism. *)

open Parcae_sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let machine ?(cores = 4) () = Machine.test_machine ~cores ()

(* Zero-cost machine for tests that reason about exact virtual times. *)
let exact_machine ?(cores = 4) () =
  {
    (machine ~cores ()) with
    Machine.ctx_switch = 0;
    chan_op = 0;
    lock_op = 0;
    time_slice = 1_000_000_000;
  }

let test_single_compute () =
  let eng = Engine.create (exact_machine ()) in
  let finished_at = ref (-1) in
  let _ =
    Engine.spawn eng ~name:"worker" (fun () ->
        Engine.compute 1000;
        finished_at := Engine.now ())
  in
  ignore (Engine.run eng);
  check_int "compute advances clock" 1000 !finished_at

let test_parallel_computes () =
  (* Two threads, two cores: both finish at t=1000. *)
  let eng = Engine.create (exact_machine ~cores:2 ()) in
  let t1 = ref 0 and t2 = ref 0 in
  let _ = Engine.spawn eng ~name:"a" (fun () -> Engine.compute 1000; t1 := Engine.now ()) in
  let _ = Engine.spawn eng ~name:"b" (fun () -> Engine.compute 1000; t2 := Engine.now ()) in
  ignore (Engine.run eng);
  check_int "a" 1000 !t1;
  check_int "b" 1000 !t2

let test_oversubscription_serializes () =
  (* Two threads, one core: total work is serialized. *)
  let eng = Engine.create (exact_machine ~cores:1 ()) in
  let done_times = ref [] in
  for i = 1 to 2 do
    ignore
      (Engine.spawn eng
         ~name:(Printf.sprintf "w%d" i)
         (fun () ->
           Engine.compute 1000;
           done_times := Engine.now () :: !done_times))
  done;
  ignore (Engine.run eng);
  let latest = List.fold_left max 0 !done_times in
  check_int "serialized" 2000 latest

let test_preemption_interleaves () =
  (* One core, tiny time slice: the short thread must not wait for the whole
     long burst, proving preemption works. *)
  let m = { (exact_machine ~cores:1 ()) with Machine.time_slice = 100 } in
  let eng = Engine.create m in
  let short_done = ref 0 in
  let _ = Engine.spawn eng ~name:"long" (fun () -> Engine.compute 100_000) in
  let _ = Engine.spawn eng ~name:"short" (fun () -> Engine.compute 100; short_done := Engine.now ()) in
  ignore (Engine.run eng);
  check_bool "short finished well before long" true (!short_done < 10_000);
  check_bool "short waited at least one slice" true (!short_done >= 100)

let test_sleep () =
  let eng = Engine.create (exact_machine ()) in
  let woke = ref 0 in
  let _ =
    Engine.spawn eng ~name:"sleeper" (fun () ->
        Engine.sleep 5000;
        woke := Engine.now ())
  in
  ignore (Engine.run eng);
  check_int "sleep duration" 5000 !woke

let test_spawn_from_thread_and_join () =
  let eng = Engine.create (exact_machine ()) in
  let result = ref 0 in
  let _ =
    Engine.spawn eng ~name:"parent" (fun () ->
        let child =
          Engine.spawn_thread ~name:"child" (fun () ->
              Engine.compute 700;
              result := 42)
        in
        Engine.join child;
        check_int "child ran before join returned" 42 !result;
        result := !result + 1)
  in
  ignore (Engine.run eng);
  check_int "parent observed child" 43 !result

let test_cond_signal_wakes_fifo () =
  let eng = Engine.create (exact_machine ()) in
  let order = ref [] in
  let c = Engine.cond_create () in
  let waiter name =
    Engine.spawn eng ~name (fun () ->
        Engine.wait_on c;
        order := name :: !order)
  in
  let _ = waiter "first" in
  let _ = waiter "second" in
  let _ =
    Engine.spawn eng ~name:"signaller" (fun () ->
        Engine.compute 10;
        Engine.signal c;
        Engine.signal c)
  in
  ignore (Engine.run eng);
  Alcotest.(check (list string)) "FIFO wakeup" [ "first"; "second" ] (List.rev !order)

let test_chan_fifo () =
  let eng = Engine.create (exact_machine ()) in
  let ch = Chan.create eng "c" in
  let received = ref [] in
  let _ =
    Engine.spawn eng ~name:"producer" (fun () ->
        for i = 1 to 5 do
          Chan.send ch i
        done)
  in
  let _ =
    Engine.spawn eng ~name:"consumer" (fun () ->
        for _ = 1 to 5 do
          received := Chan.recv ch :: !received
        done)
  in
  ignore (Engine.run eng);
  Alcotest.(check (list int)) "order preserved" [ 1; 2; 3; 4; 5 ] (List.rev !received)

let test_chan_blocking_recv () =
  let eng = Engine.create (exact_machine ()) in
  let ch = Chan.create eng "c" in
  let got_at = ref 0 in
  let _ =
    Engine.spawn eng ~name:"consumer" (fun () ->
        let v = Chan.recv ch in
        got_at := Engine.now ();
        check_int "value" 99 v)
  in
  let _ =
    Engine.spawn eng ~name:"producer" (fun () ->
        Engine.sleep 2000;
        Chan.send ch 99)
  in
  ignore (Engine.run eng);
  check_bool "consumer blocked until send" true (!got_at >= 2000)

let test_chan_capacity_blocks_sender () =
  let eng = Engine.create (exact_machine ()) in
  let ch = Chan.create ~capacity:2 eng "c" in
  let sent_all_at = ref 0 in
  let _ =
    Engine.spawn eng ~name:"producer" (fun () ->
        for i = 1 to 3 do
          Chan.send ch i
        done;
        sent_all_at := Engine.now ())
  in
  let _ =
    Engine.spawn eng ~name:"consumer" (fun () ->
        Engine.sleep 5000;
        ignore (Chan.recv ch);
        ignore (Chan.recv ch);
        ignore (Chan.recv ch))
  in
  ignore (Engine.run eng);
  check_bool "third send blocked on capacity" true (!sent_all_at >= 5000)

let test_chan_try_ops () =
  let eng = Engine.create (exact_machine ()) in
  let ch = Chan.create ~capacity:1 eng "c" in
  let _ =
    Engine.spawn eng ~name:"t" (fun () ->
        Alcotest.(check (option int)) "empty try_recv" None (Chan.try_recv ch);
        check_bool "try_send ok" true (Chan.try_send ch 1);
        check_bool "try_send full" false (Chan.try_send ch 2);
        Alcotest.(check (option int)) "try_recv" (Some 1) (Chan.try_recv ch))
  in
  ignore (Engine.run eng);
  ()

let test_chan_drain () =
  let eng = Engine.create (exact_machine ()) in
  let ch = Chan.create eng "c" in
  let drained = ref (-1) in
  let _ =
    Engine.spawn eng ~name:"t" (fun () ->
        Chan.send ch 1;
        Chan.send ch 2;
        drained := Chan.drain ch;
        check_int "empty after drain" 0 (Chan.length ch))
  in
  ignore (Engine.run eng);
  check_int "drained two" 2 !drained

let test_lock_mutual_exclusion () =
  let eng = Engine.create (exact_machine ~cores:4 ()) in
  let l = Lock.create "l" in
  let counter = ref 0 in
  let max_inside = ref 0 and inside = ref 0 in
  for i = 1 to 4 do
    ignore
      (Engine.spawn eng
         ~name:(Printf.sprintf "w%d" i)
         (fun () ->
           for _ = 1 to 50 do
             Lock.with_lock l (fun () ->
                 incr inside;
                 max_inside := max !max_inside !inside;
                 Engine.compute 10;
                 incr counter;
                 decr inside)
           done))
  done;
  ignore (Engine.run eng);
  check_int "all increments" 200 !counter;
  check_int "never two inside" 1 !max_inside

let test_barrier () =
  let eng = Engine.create (exact_machine ~cores:4 ()) in
  let b = Barrier.create ~parties:3 "b" in
  let after = ref [] in
  for i = 1 to 3 do
    ignore
      (Engine.spawn eng
         ~name:(Printf.sprintf "w%d" i)
         (fun () ->
           Engine.compute (i * 1000);
           ignore (Barrier.wait b);
           after := Engine.now () :: !after))
  done;
  ignore (Engine.run eng);
  List.iter (fun t -> check_int "released together at slowest" 3000 t) !after

let test_barrier_reusable () =
  let eng = Engine.create (exact_machine ~cores:2 ()) in
  let b = Barrier.create ~parties:2 "b" in
  let rounds = ref 0 in
  for i = 1 to 2 do
    ignore
      (Engine.spawn eng
         ~name:(Printf.sprintf "w%d" i)
         (fun () ->
           for _ = 1 to 3 do
             Engine.compute 100;
             if Barrier.wait b then incr rounds
           done))
  done;
  ignore (Engine.run eng);
  check_int "three rounds, one serial thread each" 3 !rounds

let test_energy_accounting () =
  (* One core busy for 1 second of virtual time on the test machine:
     energy = (idle 10 W + 1 busy W) * 1 s = 11 J. *)
  let eng = Engine.create (exact_machine ~cores:1 ()) in
  let _ = Engine.spawn eng ~name:"w" (fun () -> Engine.compute 1_000_000_000) in
  ignore (Engine.run eng);
  let e = Engine.energy_joules eng in
  Alcotest.(check (float 0.01)) "energy" 11.0 e

let test_power_sensor_sampling () =
  let eng = Engine.create (exact_machine ~cores:2 ()) in
  let sensor = Power.create ~period_ns:1000 eng in
  let readings = ref [] in
  let _ =
    Engine.spawn eng ~name:"load" (fun () -> Engine.compute 10_000)
  in
  let _ =
    Engine.spawn eng ~name:"monitor" (fun () ->
        for _ = 1 to 5 do
          readings := Power.read sensor :: !readings;
          Engine.sleep 1000
        done)
  in
  ignore (Engine.run eng);
  check_int "five readings" 5 (List.length !readings);
  (* With one busy core the true draw is idle + 1*core = 11 W. *)
  check_bool "sensor sees busy power" true (List.exists (fun p -> p > 10.5) !readings)

let test_set_online_cores () =
  (* Start with 2 cores, cut to 1: the two 1000-ns bursts that follow must
     serialize. *)
  let eng = Engine.create (exact_machine ~cores:2 ()) in
  let finish = ref [] in
  let worker name =
    Engine.spawn eng ~name (fun () ->
        Engine.sleep 100;
        Engine.compute 1000;
        finish := Engine.now () :: !finish)
  in
  let _ = worker "a" in
  let _ = worker "b" in
  Engine.set_online_cores eng 1;
  ignore (Engine.run eng);
  let latest = List.fold_left max 0 !finish in
  check_int "serialized after core removal" 2100 latest

let test_determinism () =
  let run_once () =
    let eng = Engine.create (machine ~cores:3 ()) in
    let ch = Chan.create eng "c" in
    let log = Buffer.create 64 in
    for i = 1 to 3 do
      ignore
        (Engine.spawn eng
           ~name:(Printf.sprintf "p%d" i)
           (fun () ->
             for j = 1 to 10 do
               Engine.compute ((i * 37) + j);
               Chan.send ch ((i * 100) + j)
             done))
    done;
    let _ =
      Engine.spawn eng ~name:"consumer" (fun () ->
          for _ = 1 to 30 do
            Buffer.add_string log (string_of_int (Chan.recv ch));
            Buffer.add_char log ','
          done)
    in
    ignore (Engine.run eng);
    (Buffer.contents log, Engine.time eng)
  in
  let l1, t1 = run_once () in
  let l2, t2 = run_once () in
  Alcotest.(check string) "identical traces" l1 l2;
  check_int "identical end times" t1 t2

let test_thread_failure_surfaces () =
  let eng = Engine.create (exact_machine ()) in
  let _ = Engine.spawn eng ~name:"bad" (fun () -> failwith "boom") in
  Alcotest.check_raises "failure propagates"
    (Engine.Thread_failure ("bad", Failure "boom"))
    (fun () -> ignore (Engine.run eng))

let test_run_until () =
  let eng = Engine.create (exact_machine ()) in
  let steps = ref 0 in
  let _ =
    Engine.spawn eng ~name:"ticker" (fun () ->
        for _ = 1 to 100 do
          Engine.sleep 100;
          incr steps
        done)
  in
  ignore (Engine.run ~until:550 eng);
  check_int "stopped mid-way" 5 !steps;
  check_int "clock at limit" 550 (Engine.time eng);
  ignore (Engine.run eng);
  check_int "resumed to completion" 100 !steps

let suite =
  [
    Alcotest.test_case "engine: single compute" `Quick test_single_compute;
    Alcotest.test_case "engine: parallel computes" `Quick test_parallel_computes;
    Alcotest.test_case "engine: oversubscription serializes" `Quick test_oversubscription_serializes;
    Alcotest.test_case "engine: preemption" `Quick test_preemption_interleaves;
    Alcotest.test_case "engine: sleep" `Quick test_sleep;
    Alcotest.test_case "engine: spawn/join" `Quick test_spawn_from_thread_and_join;
    Alcotest.test_case "engine: cond FIFO" `Quick test_cond_signal_wakes_fifo;
    Alcotest.test_case "chan: fifo" `Quick test_chan_fifo;
    Alcotest.test_case "chan: blocking recv" `Quick test_chan_blocking_recv;
    Alcotest.test_case "chan: capacity" `Quick test_chan_capacity_blocks_sender;
    Alcotest.test_case "chan: try ops" `Quick test_chan_try_ops;
    Alcotest.test_case "chan: drain" `Quick test_chan_drain;
    Alcotest.test_case "lock: mutual exclusion" `Quick test_lock_mutual_exclusion;
    Alcotest.test_case "barrier: releases together" `Quick test_barrier;
    Alcotest.test_case "barrier: reusable" `Quick test_barrier_reusable;
    Alcotest.test_case "power: energy accounting" `Quick test_energy_accounting;
    Alcotest.test_case "power: sensor sampling" `Quick test_power_sensor_sampling;
    Alcotest.test_case "engine: set_online_cores" `Quick test_set_online_cores;
    Alcotest.test_case "engine: determinism" `Quick test_determinism;
    Alcotest.test_case "engine: thread failure" `Quick test_thread_failure_surfaces;
    Alcotest.test_case "engine: run until" `Quick test_run_until;
  ]
