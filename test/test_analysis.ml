(* Tests for the static-analysis suite: the dataflow lattice, the
   dataflow-sharpened index analysis, the plan legality verifier
   (including systematic fault injection into emitted plans), the W6xx
   lints, and the end-to-end `check` pass. *)

open Parcae_ir
open Parcae_analysis
open Parcae_pdg
open Parcae_nona
module D = Dataflow
module Engine = Parcae_platform.Engine
module Machine = Parcae_sim.Machine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Dataflow lattice.                                                   *)
(* ------------------------------------------------------------------ *)

(* Transfer functions must over-approximate the interpreter: the result
   of any binop on constants is contained in the abstract result. *)
let test_binop_soundness () =
  let ops =
    [
      Instr.Add; Instr.Sub; Instr.Mul; Instr.Div; Instr.Rem; Instr.Min; Instr.Max;
      Instr.Xor; Instr.And; Instr.Or; Instr.Shl; Instr.Shr; Instr.Eq; Instr.Ne;
      Instr.Lt; Instr.Le;
    ]
  in
  let samples = [ -63; -7; -1; 0; 1; 3; 8; 62; 100 ] in
  List.iter
    (fun op ->
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              let f = D.binop op (D.const a) (D.const b) in
              check_bool
                (Printf.sprintf "%s %d %d sound" (Instr.binop_to_string op) a b)
                true
                (D.contains f (Instr.eval_binop op a b)))
            samples)
        samples)
    ops

let test_binop_exactness () =
  check_int "2+3" 5 (Option.get (D.const_of (D.binop Instr.Add (D.const 2) (D.const 3))));
  check_int "7/0 = 0" 0
    (Option.get (D.const_of (D.binop Instr.Div (D.const 7) (D.const 0))));
  check_int "7 mod 0 = 0" 0
    (Option.get (D.const_of (D.binop Instr.Rem (D.const 7) (D.const 0))));
  (* shift amounts are masked with [land 62]: shifting by 3 shifts by 2 *)
  check_int "1 shl 3 (masked)" (Instr.eval_binop Instr.Shl 1 3)
    (Option.get (D.const_of (D.binop Instr.Shl (D.const 1) (D.const 3))))

let test_join_congruence () =
  let f = D.join (D.const 1) (D.const 3) in
  check_bool "contains 1" true (D.contains f 1);
  check_bool "contains 3" true (D.contains f 3);
  check_bool "2 excluded by congruence" false (D.contains f 2);
  check_bool "const_of none" true (D.const_of f = None);
  check_bool "ranges disjoint" true (D.disjoint (D.range (Some 0) (Some 7)) (D.range (Some 16) (Some 23)));
  check_bool "overlapping ranges" false (D.disjoint (D.range (Some 0) (Some 7)) (D.range (Some 7) (Some 9)))

(* A counted induction gets an exact trip-bounded interval, and derived
   values inherit both bounds and congruence. *)
let test_induction_facts () =
  let b = Builder.create "facts" in
  let i = Builder.induction b ~from:0 ~step:1 in
  let j = Builder.mul b (Instr.Reg i) (Instr.Const 2) in
  Builder.work b (Instr.Const 10);
  let loop = Builder.finish ~trip:(Loop.Count 10) b in
  let s = D.analyze loop in
  let fi = D.reg_fact s i and fj = D.reg_fact s j in
  check_bool "i contains 0" true (D.contains fi 0);
  check_bool "i contains 9" true (D.contains fi 9);
  check_bool "i excludes 10" false (D.contains fi 10);
  check_bool "i excludes -1" false (D.contains fi (-1));
  check_bool "2i contains 18" true (D.contains fj 18);
  check_bool "2i excludes odd" false (D.contains fj 9);
  check_bool "2i excludes 20" false (D.contains fj 20)

(* ------------------------------------------------------------------ *)
(* Index-analysis precision (each case was May_conflict before the      *)
(* dataflow sharpening) and a soundness regression.                     *)
(* ------------------------------------------------------------------ *)

let doany_ok loop = Doany.applicable (Pdg.build loop)

let no_carried_mem loop =
  List.for_all
    (fun d -> not (d.Dep.carried && d.Dep.kind = Dep.Mem_data))
    (Pdg.build loop).Pdg.deps

(* store a[2i] / load a[2i+1]: strides recognized through Mul, the odd
   and even lanes never meet. *)
let test_precision_strided () =
  let b = Builder.create "strided" in
  Builder.array b "a" (Array.make 64 0);
  let i = Builder.induction b ~from:0 ~step:1 in
  let even = Builder.mul b (Instr.Reg i) (Instr.Const 2) in
  let odd = Builder.add b (Instr.Reg even) (Instr.Const 1) in
  let x = Builder.load b "a" (Instr.Reg odd) in
  Builder.store b "a" (Instr.Reg even) (Instr.Reg x);
  let loop = Builder.finish ~trip:(Loop.Count 20) b in
  check_bool "no carried mem dep" true (no_carried_mem loop);
  check_bool "DOANY applicable" true (doany_ok loop)

(* store a[i+100] / load a[i] with trip 10: the distance is infeasible. *)
let test_precision_trip_bounded () =
  let b = Builder.create "far" in
  Builder.array b "a" (Array.make 200 0);
  let i = Builder.induction b ~from:0 ~step:1 in
  let far = Builder.add b (Instr.Reg i) (Instr.Const 100) in
  let x = Builder.load b "a" (Instr.Reg i) in
  Builder.store b "a" (Instr.Reg far) (Instr.Reg x);
  let loop = Builder.finish ~trip:(Loop.Count 10) b in
  check_bool "no carried mem dep" true (no_carried_mem loop);
  check_bool "DOANY applicable" true (doany_ok loop)

(* A provably-constant register chain folds to a Fixed cell, which the
   stores at a[i+6] (cells 6..13) provably never touch. *)
let test_precision_const_chain () =
  let b = Builder.create "constchain" in
  Builder.array b "a" (Array.make 16 0);
  let i = Builder.induction b ~from:0 ~step:1 in
  let c = Builder.add b (Instr.Const 2) (Instr.Const 3) in
  let x = Builder.load b "a" (Instr.Reg c) in
  let j = Builder.add b (Instr.Reg i) (Instr.Const 6) in
  Builder.store b "a" (Instr.Reg j) (Instr.Reg x);
  let loop = Builder.finish ~trip:(Loop.Count 8) b in
  check_bool "fixed cell below the stored range" true (no_carried_mem loop);
  check_bool "DOANY applicable" true (doany_ok loop)

(* Unclassifiable chains still separate through interval facts: the
   masked load index lives in [16, 23] while the stores cover [0, 7]. *)
let test_precision_fact_disjoint () =
  let b = Builder.create "masked" in
  Builder.array b "a" (Array.make 32 0);
  let i = Builder.induction b ~from:0 ~step:1 in
  let m = Builder.binop b Instr.And (Instr.Reg i) (Instr.Const 7) in
  let h = Builder.add b (Instr.Reg m) (Instr.Const 16) in
  let x = Builder.load b "a" (Instr.Reg h) in
  Builder.store b "a" (Instr.Reg i) (Instr.Reg x);
  let loop = Builder.finish ~trip:(Loop.Count 8) b in
  check_bool "ranges disjoint" true (no_carried_mem loop);
  check_bool "DOANY applicable" true (doany_ok loop)

(* Affine-vs-fixed: a[i] against a[5] conflicts exactly when iteration 5
   is reachable. *)
let test_affine_vs_fixed () =
  let make trip =
    let b = Builder.create "afix" in
    Builder.array b "a" (Array.make 16 0);
    let i = Builder.induction b ~from:0 ~step:1 in
    let x = Builder.load b "a" (Instr.Const 5) in
    Builder.store b "a" (Instr.Reg i) (Instr.Reg x);
    Builder.finish ~trip:(Loop.Count trip) b
  in
  check_bool "trip 10 reaches a[5]" false (doany_ok (make 10));
  check_bool "trip 4 cannot reach a[5]" true (doany_ok (make 4))

(* Soundness regression: a fixed cell read-modify-written every iteration
   is a genuine carried dependence (the seed classified equal Fixed cells
   as Same_iteration and wrongly admitted DOANY). *)
let test_fixed_cell_regression () =
  let b = Builder.create "fixedcell" in
  Builder.array b "a" (Array.make 4 0);
  let _i = Builder.induction b ~from:0 ~step:1 in
  let x = Builder.load b "a" (Instr.Const 0) in
  let y = Builder.add b (Instr.Reg x) (Instr.Const 1) in
  Builder.store b "a" (Instr.Const 0) (Instr.Reg y);
  let loop = Builder.finish ~trip:(Loop.Count 10) b in
  check_bool "carried mem dep present" false (no_carried_mem loop);
  check_bool "DOANY rejected" false (doany_ok loop)

(* ------------------------------------------------------------------ *)
(* Verifier: accepts everything the compiler emits.                    *)
(* ------------------------------------------------------------------ *)

let plan_errors pdg scheme = Diag.count_errors (Verify.plan pdg scheme)

let test_verifier_accepts_kernels () =
  List.iter
    (fun (k : Kernels.expectation) ->
      let c = Compiler.compile (k.Kernels.make ()) in
      check_int (k.Kernels.k_name ^ ": pdg integrity") 0
        (Diag.count_errors (Verify.pdg_integrity c.Compiler.pdg));
      List.iter
        (fun s ->
          check_int
            (Printf.sprintf "%s: %s verifies" k.Kernels.k_name (Verify.scheme_name s))
            0
            (plan_errors c.Compiler.pdg s))
        (Compiler.schemes c))
    Kernels.suite

(* ------------------------------------------------------------------ *)
(* Verifier: fault injection.  Every corruption class must be caught.  *)
(* ------------------------------------------------------------------ *)

(* Find the first kernel (with its compilation) satisfying [pred]. *)
let find_kernel pred =
  let rec go = function
    | [] -> Alcotest.fail "no kernel matches the fault-injection precondition"
    | (k : Kernels.expectation) :: rest ->
        let c = Compiler.compile (k.Kernels.make ()) in
        if pred c then (k.Kernels.k_name, c) else go rest
  in
  go Kernels.suite

let stage_of_node (pipe : Mtcg.pipeline) id =
  let found = ref (-1) in
  Array.iteri
    (fun si (s : Psdswp.stage) -> if List.mem id s.Psdswp.members then found := si)
    pipe.Mtcg.stages;
  !found

(* Move node [id] into stage [to_stage], preserving coverage. *)
let move_node (pipe : Mtcg.pipeline) id ~to_stage =
  let stages =
    Array.mapi
      (fun si (s : Psdswp.stage) ->
        let members = List.filter (fun m -> m <> id) s.Psdswp.members in
        let members =
          if si = to_stage then List.sort compare (id :: members) else members
        in
        { s with Psdswp.members })
      pipe.Mtcg.stages
  in
  { pipe with Mtcg.stages }

let array_remove arr i =
  Array.of_list (List.filteri (fun j _ -> j <> i) (Array.to_list arr))

(* Dropping any channel must be detected: each edge either carries a
   dependence or paces an otherwise-unreached stage. *)
let test_inject_drop_edges () =
  List.iter
    (fun (k : Kernels.expectation) ->
      let c = Compiler.compile (k.Kernels.make ()) in
      match c.Compiler.pipeline with
      | None -> ()
      | Some pipe ->
          Array.iteri
            (fun i _ ->
              let bad = { pipe with Mtcg.edges = array_remove pipe.Mtcg.edges i } in
              check_bool
                (Printf.sprintf "%s: dropping edge %d rejected" k.Kernels.k_name i)
                true
                (plan_errors c.Compiler.pdg (Verify.Psdswp bad) > 0))
            pipe.Mtcg.edges)
    Kernels.suite

let test_inject_drop_reg () =
  let name, c =
    find_kernel (fun c ->
        match c.Compiler.pipeline with
        | Some pipe ->
            Array.exists (fun (e : Mtcg.edge) -> e.Mtcg.e_regs <> []) pipe.Mtcg.edges
        | None -> false)
  in
  let pipe = Option.get c.Compiler.pipeline in
  let edges =
    Array.map
      (fun (e : Mtcg.edge) ->
        match e.Mtcg.e_regs with
        | [] -> e
        | _ :: rest -> { e with Mtcg.e_regs = rest })
      pipe.Mtcg.edges
  in
  check_bool (name ^ ": dropping a communicated register rejected") true
    (plan_errors c.Compiler.pdg (Verify.Psdswp { pipe with Mtcg.edges }) > 0)

let test_inject_backward_dep () =
  let name, c =
    find_kernel (fun c ->
        match c.Compiler.pipeline with
        | Some pipe ->
            List.exists
              (fun (d : Dep.t) ->
                (not d.Dep.carried) && stage_of_node pipe d.Dep.src >= 1)
              c.Compiler.pdg.Pdg.deps
        | None -> false)
  in
  let pipe = Option.get c.Compiler.pipeline in
  let d =
    List.find
      (fun (d : Dep.t) -> (not d.Dep.carried) && stage_of_node pipe d.Dep.src >= 1)
      c.Compiler.pdg.Pdg.deps
  in
  let bad = move_node pipe d.Dep.dst ~to_stage:0 in
  check_bool (name ^ ": consumer moved before its producer rejected") true
    (plan_errors c.Compiler.pdg (Verify.Psdswp bad) > 0)

let test_inject_break_in_par_stage () =
  let name, c =
    find_kernel (fun c ->
        match c.Compiler.pipeline with
        | Some pipe ->
            Array.exists (fun (s : Psdswp.stage) -> s.Psdswp.par) pipe.Mtcg.stages
            && Array.exists
                 (function
                   | Loop.Instr_node (Instr.Break_if _) -> true
                   | _ -> false)
                 c.Compiler.pdg.Pdg.nodes
        | None -> false)
  in
  let pipe = Option.get c.Compiler.pipeline in
  let par_stage = ref 0 in
  Array.iteri
    (fun si (s : Psdswp.stage) -> if s.Psdswp.par then par_stage := si)
    pipe.Mtcg.stages;
  let break_id = ref 0 in
  Array.iteri
    (fun id n ->
      match n with
      | Loop.Instr_node (Instr.Break_if _) -> break_id := id
      | _ -> ())
    c.Compiler.pdg.Pdg.nodes;
  let bad = move_node pipe !break_id ~to_stage:!par_stage in
  check_bool (name ^ ": break in a parallel stage rejected") true
    (plan_errors c.Compiler.pdg (Verify.Psdswp bad) > 0)

let test_inject_induction_in_par_stage () =
  let name, c =
    find_kernel (fun c ->
        match c.Compiler.pipeline with
        | Some pipe ->
            Array.exists (fun (s : Psdswp.stage) -> s.Psdswp.par) pipe.Mtcg.stages
            && c.Compiler.pdg.Pdg.inductions <> []
        | None -> false)
  in
  let pipe = Option.get c.Compiler.pipeline in
  let par_stage = ref 0 in
  Array.iteri
    (fun si (s : Psdswp.stage) -> if s.Psdswp.par then par_stage := si)
    pipe.Mtcg.stages;
  let pdg = c.Compiler.pdg in
  let ind = List.hd pdg.Pdg.inductions in
  let phi_id = ref 0 in
  List.iteri
    (fun pi (p : Instr.phi) ->
      if p.Instr.pdst = ind.Alias.ind_phi then phi_id := pi)
    pdg.Pdg.loop.Loop.phis;
  let bad = move_node pipe !phi_id ~to_stage:!par_stage in
  check_bool (name ^ ": induction phi in a parallel stage rejected") true
    (plan_errors pdg (Verify.Psdswp bad) > 0)

let test_inject_coverage_hole () =
  let name, c = find_kernel (fun c -> c.Compiler.pipeline <> None) in
  let pipe = Option.get c.Compiler.pipeline in
  let stages =
    Array.mapi
      (fun si (s : Psdswp.stage) ->
        if si = 0 then { s with Psdswp.members = List.tl s.Psdswp.members } else s)
      pipe.Mtcg.stages
  in
  check_bool (name ^ ": unassigned node rejected") true
    (plan_errors c.Compiler.pdg (Verify.Psdswp { pipe with Mtcg.stages }) > 0)

(* Relax-tag corruption, both directions: a hard dependence laundered as
   relaxable must fail both integrity and the scheme check; a genuinely
   relaxable one stamped Hard must make the old plan illegal. *)
let test_inject_relax_flips () =
  let c = Compiler.compile (Kernels.histogram ~n:64 ()) in
  let pdg = c.Compiler.pdg in
  check_bool "histogram has a hard carried mem dep" true
    (List.exists
       (fun (d : Dep.t) ->
         d.Dep.carried && d.Dep.kind = Dep.Mem_data && not (Dep.is_relaxable d))
       pdg.Pdg.deps);
  let laundered =
    {
      pdg with
      Pdg.deps =
        List.map
          (fun (d : Dep.t) ->
            if d.Dep.carried && not (Dep.is_relaxable d) then
              { d with Dep.relax = Dep.Reduction }
            else d)
          pdg.Pdg.deps;
    }
  in
  check_bool "laundered tags fail integrity" true
    (Diag.count_errors (Verify.pdg_integrity laundered) > 0);
  (match Doany.make_plan laundered with
  | Some p ->
      check_bool "laundered DOANY rejected" true
        (plan_errors laundered (Verify.Doany p) > 0)
  | None -> Alcotest.fail "laundering should make DOANY appear applicable");
  let c2 = Compiler.compile (Kernels.montecarlo ~n:64 ()) in
  let pdg2 = c2.Compiler.pdg in
  let plan2 =
    match c2.Compiler.doany with
    | Some p -> p
    | None -> Alcotest.fail "montecarlo should be DOANY"
  in
  check_bool "montecarlo has commutative deps" true
    (List.exists (fun (d : Dep.t) -> d.Dep.relax = Dep.Commutative) pdg2.Pdg.deps);
  let hardened =
    {
      pdg2 with
      Pdg.deps =
        List.map
          (fun (d : Dep.t) ->
            if d.Dep.relax = Dep.Commutative then { d with Dep.relax = Dep.Hard } else d)
          pdg2.Pdg.deps;
    }
  in
  check_bool "hardened PDG rejects the old DOANY plan" true
    (plan_errors hardened (Verify.Doany plan2) > 0)

let test_inject_doany_plan_mutations () =
  let c = Compiler.compile (Kernels.montecarlo ~n:64 ()) in
  let plan = Option.get c.Compiler.doany in
  check_bool "montecarlo serializes a function" true (plan.Doany.serialized_fns <> []);
  check_bool "empty lock set rejected" true
    (plan_errors c.Compiler.pdg (Verify.Doany { plan with Doany.serialized_fns = [] }) > 0);
  let ck = Compiler.compile (Kernels.kmeans ~n:64 ()) in
  let kplan = Option.get ck.Compiler.doany in
  check_bool "kmeans privatizes a reduction" true (kplan.Doany.privatized <> []);
  check_bool "dropped privatization rejected" true
    (plan_errors ck.Compiler.pdg (Verify.Doany { kplan with Doany.privatized = [] }) > 0);
  let flipped =
    List.map
      (fun (r : Pdg.reduction) -> { r with Pdg.red_op = Instr.Sub })
      kplan.Doany.privatized
  in
  check_bool "wrong combine operator rejected" true
    (plan_errors ck.Compiler.pdg (Verify.Doany { kplan with Doany.privatized = flipped }) > 0)

let test_inject_doacross_mutations () =
  let c = Compiler.compile (Kernels.crc32 ~n:64 ()) in
  let plan =
    match c.Compiler.doacross with
    | Some p -> p
    | None -> Alcotest.fail "crc32 should be DOACROSS"
  in
  let pdg = c.Compiler.pdg in
  check_int "unmutated plan verifies" 0 (plan_errors pdg (Verify.Doacross plan));
  check_bool "dropping the forwarded recurrence rejected" true
    (plan_errors pdg (Verify.Doacross { plan with Doacross.hard_phis = [] }) > 0);
  check_bool "recurrence chain moved into the overlapped part rejected" true
    (plan_errors pdg
       (Verify.Doacross
          {
            plan with
            Doacross.pre = plan.Doacross.pre @ plan.Doacross.chain;
            Doacross.chain = [];
          })
     > 0);
  let holed =
    match plan.Doacross.pre with
    | _ :: rest -> { plan with Doacross.pre = rest }
    | [] -> { plan with Doacross.chain = List.tl plan.Doacross.chain }
  in
  check_bool "coverage hole rejected" true
    (plan_errors pdg (Verify.Doacross holed) > 0)

(* The launch boundary re-verifies: a hand-corrupted compiled record must
   not reach the executor. *)
let test_launch_rejects_corrupt_plan () =
  let name, c = find_kernel (fun c -> c.Compiler.pipeline <> None) in
  let pipe = Option.get c.Compiler.pipeline in
  let bad =
    { c with Compiler.pipeline = Some { pipe with Mtcg.edges = [||] } }
  in
  let eng = Engine.create Machine.xeon_x7460 in
  match Compiler.launch eng bad with
  | (_ : Compiler.handle) ->
      Alcotest.failf "%s: corrupt pipeline reached the executor" name
  | exception Verify.Illegal_plan (scheme, diags) ->
      Alcotest.(check string) "rejected scheme" "PS-DSWP" scheme;
      check_bool "diagnostics attached" true (Diag.count_errors diags > 0)

(* ------------------------------------------------------------------ *)
(* Lints.                                                              *)
(* ------------------------------------------------------------------ *)

let lint_codes src =
  List.map (fun d -> d.Diag.code) (Lint.run (Parser.parse src))

let has_code c src = List.mem c (lint_codes src)

let test_lint_dead_store () =
  check_bool "overwritten store flagged" true
    (has_code "W601"
       {| loop l (count 4) {
            array a[4] = zero
            i = induction 0 step 1
            store a[0], 1
            store a[0], 2
          } |});
  check_bool "intervening load suppresses" false
    (has_code "W601"
       {| loop l (count 4) {
            array a[4] = zero
            i = induction 0 step 1
            store a[0], 1
            x = load a[0]
            store a[0], x
          } |})

let test_lint_invariant_liveout () =
  check_bool "constant live-out flagged" true
    (has_code "W602"
       {| loop l (count 4) {
            s = phi 5 carry s2
            s2 = add s, 0
            work 10
            liveout s
          } |});
  check_bool "moving live-out unflagged" false
    (has_code "W602"
       {| loop l (count 4) {
            s = phi 5 carry s2
            s2 = add s, 3
            work 10
            liveout s
          } |})

let test_lint_zero_divisor () =
  check_bool "possibly-zero divisor flagged" true
    (has_code "W603"
       {| loop l (count 4) {
            array a[4] = zero
            i = induction 0 step 1
            d = load a[i]
            q = div 10, d
            store a[i], q
          } |});
  check_bool "nonzero divisor unflagged" false
    (has_code "W603"
       {| loop l (count 4) {
            array a[4] = iota
            i = induction 0 step 1
            x = load a[i]
            q = div x, 2
            store a[i], q
          } |})

let test_lint_unreachable_after_break () =
  check_bool "code after an always-firing break flagged" true
    (has_code "W604"
       {| loop l (while) {
            i = induction 0 step 1
            one = add 0, 1
            break_if one
            work 5
          } |})

let test_lint_unused_register () =
  check_bool "never-read register flagged" true
    (has_code "W605"
       {| loop l (count 4) {
            array a[4] = iota
            i = induction 0 step 1
            x = load a[i]
            work 5
          } |})

let test_lint_never_firing_break () =
  check_bool "never-firing break flagged" true
    (has_code "W606"
       {| loop l (while) {
            i = induction 0 step 1
            z = mul i, 0
            break_if z
            work 5
          } |})

(* ------------------------------------------------------------------ *)
(* End-to-end check pass.                                              *)
(* ------------------------------------------------------------------ *)

let test_check_kernels_clean () =
  List.iter
    (fun (k : Kernels.expectation) ->
      let r = Check.run (k.Kernels.make ()) in
      check_int (k.Kernels.k_name ^ ": zero errors") 0 (Diag.count_errors r.Check.diags);
      check_bool (k.Kernels.k_name ^ ": SEQ first") true
        (List.hd r.Check.schemes = "SEQ");
      check_bool (k.Kernels.k_name ^ ": DOANY expectation matches") true
        (List.mem "DOANY" r.Check.schemes = k.Kernels.exp_doany))
    Kernels.suite

let test_check_examples_clean () =
  let dir = "../examples/kernels" in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".loop")
    |> List.sort compare
  in
  check_bool "found sample .loop files" true (List.length files >= 4);
  List.iter
    (fun f ->
      let r = Check.run (Parser.parse_file (Filename.concat dir f)) in
      check_int (f ^ ": zero errors") 0 (Diag.count_errors r.Check.diags))
    files

(* Inhibitor explanations carry source positions and recomputed reuse
   distances. *)
let test_check_explanations () =
  let src =
    {| loop carried (count 16) {
         array a[32] = iota
         i = induction 0 step 1
         prev = load a[i]
         next = add prev, 1
         j = add i, 1
         store a[j], next
       } |}
  in
  let r = Check.run (Parser.parse src) in
  check_bool "DOANY not offered" true (not (List.mem "DOANY" r.Check.schemes));
  let mem_infos =
    List.filter (fun (d : Diag.t) -> d.Diag.code = "N401") r.Check.diags
  in
  check_bool "inhibitor explained" true (mem_infos <> []);
  let d = List.hd mem_infos in
  check_bool "explanation names the array" true
    (contains d.Diag.message "a[]");
  check_bool "explanation gives the distance" true
    (contains d.Diag.message "1 iteration(s) later");
  check_bool "explanation is located" true (d.Diag.loc <> None)

let test_check_json_shape () =
  let r = Check.run (Kernels.histogram ~n:64 ()) in
  let json = Check.to_json r in
  check_bool "names the loop" true (contains json "histogram");
  check_bool "lists schemes" true (contains json "PS-DSWP");
  check_bool "embeds diagnostics" true (contains json "\"code\"")

let suite =
  [
    ("dataflow: binop transfer is sound on constants", `Quick, test_binop_soundness);
    ("dataflow: constant folding matches eval", `Quick, test_binop_exactness);
    ("dataflow: join keeps congruence", `Quick, test_join_congruence);
    ("dataflow: counted induction gets trip bounds", `Quick, test_induction_facts);
    ("alias precision: strided accesses admit DOANY", `Quick, test_precision_strided);
    ("alias precision: trip-infeasible distance", `Quick, test_precision_trip_bounded);
    ("alias precision: constant chains fold to cells", `Quick, test_precision_const_chain);
    ("alias precision: disjoint value ranges", `Quick, test_precision_fact_disjoint);
    ("alias: affine hits a fixed cell iff reachable", `Quick, test_affine_vs_fixed);
    ("alias soundness: fixed-cell recurrence inhibits", `Quick, test_fixed_cell_regression);
    ("verify: accepts every emitted scheme", `Quick, test_verifier_accepts_kernels);
    ("verify: dropping any channel is caught", `Quick, test_inject_drop_edges);
    ("verify: dropping a communicated register is caught", `Quick, test_inject_drop_reg);
    ("verify: backward dependence is caught", `Quick, test_inject_backward_dep);
    ("verify: break in a parallel stage is caught", `Quick, test_inject_break_in_par_stage);
    ( "verify: induction in a parallel stage is caught",
      `Quick,
      test_inject_induction_in_par_stage );
    ("verify: coverage hole is caught", `Quick, test_inject_coverage_hole);
    ("verify: relax-tag corruption is caught", `Quick, test_inject_relax_flips);
    ("verify: DOANY plan mutations are caught", `Quick, test_inject_doany_plan_mutations);
    ("verify: DOACROSS plan mutations are caught", `Quick, test_inject_doacross_mutations);
    ("verify: launch rejects a corrupted plan", `Quick, test_launch_rejects_corrupt_plan);
    ("lint: dead store", `Quick, test_lint_dead_store);
    ("lint: loop-invariant live-out", `Quick, test_lint_invariant_liveout);
    ("lint: possibly-zero divisor", `Quick, test_lint_zero_divisor);
    ("lint: unreachable after break", `Quick, test_lint_unreachable_after_break);
    ("lint: unused register", `Quick, test_lint_unused_register);
    ("lint: never-firing break", `Quick, test_lint_never_firing_break);
    ("check: kernels produce zero errors", `Quick, test_check_kernels_clean);
    ("check: sample .loop files produce zero errors", `Quick, test_check_examples_clean);
    ("check: inhibitors explained in source terms", `Quick, test_check_explanations);
    ("check: JSON report shape", `Quick, test_check_json_shape);
  ]
