(* Tests for the .loop textual frontend: grammar coverage, binding rules,
   error reporting, and end-to-end compilation of the sample kernels. *)

open Parcae_ir
open Parcae_sim

(* Engine/value types come from the platform dispatch layer (the runtime's
   own types); [Machine]/[Power]/etc. remain from [Parcae_sim] above. *)
module Engine = Parcae_platform.Engine
module Chan = Parcae_platform.Chan
module Lock = Parcae_platform.Lock
module Barrier = Parcae_platform.Barrier
open Parcae_nona
module R = Parcae_runtime

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let parses_ok src = ignore (Parser.parse src : Loop.t)

let fails_with fragment src =
  match Parser.parse src with
  | (_ : Loop.t) -> Alcotest.failf "expected a parse error mentioning %S" fragment
  | exception Parser.Parse_error m ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      check_bool (Printf.sprintf "error %S mentions %S" m fragment) true (contains m fragment)

let test_minimal () =
  let loop =
    Parser.parse {|
      loop tiny (count 10) {
        i = induction 0 step 1
        s = phi 0 carry s2
        s2 = add s, i
        liveout s
      }
    |}
  in
  Alcotest.(check string) "name" "tiny" loop.Loop.name;
  check_int "phis" 2 (List.length loop.Loop.phis);
  let r = Interp.run loop in
  check_int "sum 0..9" 45 (snd (List.hd r.Interp.live_out))

let test_grammar_coverage () =
  parses_ok
    {|
      # every statement form, hex and negative literals
      loop all (while) {
        array a[8] = iota
        array b[8] = zero
        array c[8] = fill -3
        array d[8] = hash
        i = induction 0 step 1
        stop = eq i, 0x7
        break_if stop
        x = load a[i]
        y = min x, -5
        store b[i], y
        work 100
        r = call rand(0) commutative
        call emit(r)
        acc = phi 0 carry acc2
        acc2 = xor acc, y
        liveout acc
      }
    |}

let test_interp_matches_builder () =
  (* The textual montecarlo must behave exactly like a builder-made twin. *)
  let text =
    Parser.parse {|
      loop mc (count 200) {
        r = call rand(0) commutative
        work 10
        v = rem r, 1000
        sum = phi 0 carry sum2
        sum2 = add sum, v
        liveout sum
      }
    |}
  in
  let b = Builder.create "mc" in
  let r = Option.get (Builder.call ~commutative:true b "rand" (Instr.Const 0)) in
  Builder.work b (Instr.Const 10);
  let v = Builder.binop b Instr.Rem (Instr.Reg r) (Instr.Const 1000) in
  let sum = Builder.reduce b Instr.Add ~init:(Instr.Const 0) (Instr.Reg v) in
  Builder.live_out b sum;
  let built = Builder.finish ~trip:(Loop.Count 200) b in
  let rt = Interp.run text and rb = Interp.run built in
  check_int "same sum" (snd (List.hd rb.Interp.live_out)) (snd (List.hd rt.Interp.live_out));
  check_bool "same externals" true (rt.Interp.externals = rb.Interp.externals)

let test_errors () =
  fails_with "defined twice"
    "loop l (count 1) { i = induction 0 step 1\n i = induction 0 step 1 }";
  fails_with "unknown register" "loop l (count 1) { x = add y, 1 }";
  fails_with "carry register z never defined" "loop l (count 1) { p = phi 0 carry z }";
  fails_with "unknown operation" "loop l (count 1) { x = frobnicate 1, 2 }";
  fails_with "expected 'loop'" "noise";
  fails_with "missing '}'" "loop l (count 1) { work 5";
  fails_with "unexpected character" "loop l (count 1) { work 5 @ }";
  fails_with "undeclared array" "loop l (count 1) { x = load nowhere[0] }";
  fails_with "While loop without Break_if" "loop l (while) { work 5 }"

(* Errors carry a file:line prefix pointing at the offending statement,
   and successful parses stamp each node with its source location. *)
let test_located_errors () =
  fails_with "<input>:1:" "noise";
  fails_with "<input>:3:" "loop l (count 1) {\n  work 5\n  x = frobnicate 1, 2\n}";
  fails_with "<input>:4:" "loop l (count 1) {\n  work 5\n  work 5\n  x = add y, 1\n}";
  let loop = Parser.parse "loop l (count 2) {\n  work 5\n  work 7\n}" in
  let nphis = List.length loop.Loop.phis in
  (match Loop.loc_of loop (nphis + 1) with
  | Some l ->
      Alcotest.(check string) "loc file" "<input>" l.Loop.loc_file;
      check_int "loc line" 3 l.Loop.loc_line
  | None -> Alcotest.fail "body node has no source location");
  match Parser.parse_file "../examples/kernels/crc32.loop" with
  | loop -> (
      match Loop.loc_of loop (List.length loop.Loop.phis) with
      | Some l -> check_bool "file recorded" true (Filename.basename l.Loop.loc_file = "crc32.loop")
      | None -> Alcotest.fail "parsed file lost its locations")
  | exception Parser.Parse_error m -> Alcotest.failf "crc32.loop failed to parse: %s" m

let test_sample_kernels_compile_and_run () =
  let machine = Machine.xeon_x7460 in
  let dir = "../../../examples/kernels" in
  let dir = if Sys.file_exists dir then dir else "examples/kernels" in
  let files = Sys.readdir dir |> Array.to_list |> List.sort compare in
  check_bool "found sample kernels" true (List.length files >= 4);
  List.iter
    (fun file ->
      let loop = Parser.parse_file (Filename.concat dir file) in
      let c = Compiler.compile loop in
      let eng = Engine.create machine in
      let h = Compiler.launch ~budget:24 eng c in
      let params =
        { R.Controller.default_params with R.Controller.nseq = 8; npar_factor = 8; monitor_ns = 10_000_000 }
      in
      ignore (R.Controller.spawn eng (R.Controller.create ~params h.Compiler.region));
      ignore (Engine.run ~until:300_000_000_000 eng);
      check_bool (file ^ ": done") true (R.Region.is_done h.Compiler.region);
      check_bool (file ^ ": semantics") true (Compiler.preserves_semantics h))
    files

let test_expected_schemes_for_samples () =
  let dir = "../../../examples/kernels" in
  let dir = if Sys.file_exists dir then dir else "examples/kernels" in
  let schemes file = Compiler.scheme_names (Compiler.compile (Parser.parse_file (Filename.concat dir file))) in
  Alcotest.(check (list string)) "crc32.loop" [ "SEQ"; "DOACROSS"; "PS-DSWP" ] (schemes "crc32.loop");
  Alcotest.(check (list string)) "histogram.loop" [ "SEQ"; "PS-DSWP" ] (schemes "histogram.loop");
  Alcotest.(check (list string)) "montecarlo.loop" [ "SEQ"; "DOANY" ] (schemes "montecarlo.loop");
  Alcotest.(check (list string)) "scan.loop" [ "SEQ"; "PS-DSWP" ] (schemes "scan.loop")

let suite =
  [
    Alcotest.test_case "parser: minimal loop" `Quick test_minimal;
    Alcotest.test_case "parser: grammar coverage" `Quick test_grammar_coverage;
    Alcotest.test_case "parser: matches builder" `Quick test_interp_matches_builder;
    Alcotest.test_case "parser: error reporting" `Quick test_errors;
    Alcotest.test_case "parser: located errors and node locations" `Quick test_located_errors;
    Alcotest.test_case "parser: sample kernels run" `Quick test_sample_kernels_compile_and_run;
    Alcotest.test_case "parser: sample kernel schemes" `Quick test_expected_schemes_for_samples;
  ]

let test_roundtrip_builtin_kernels () =
  (* print -> parse must preserve semantics for every built-in kernel;
     arrays without a recognized initializer print as element lists. *)
  List.iter
    (fun (k : Kernels.expectation) ->
      let loop = k.Kernels.make () in
      let src = Parser.to_source loop in
      let reparsed = Parser.parse src in
      let a = Interp.run loop and b = Interp.run reparsed in
      check_bool (k.Kernels.k_name ^ ": roundtrip iterations") true
        (a.Interp.iterations = b.Interp.iterations);
      check_bool (k.Kernels.k_name ^ ": roundtrip externals") true
        (a.Interp.externals = b.Interp.externals);
      check_bool (k.Kernels.k_name ^ ": roundtrip arrays") true
        (List.map snd a.Interp.arrays = List.map snd b.Interp.arrays);
      check_bool (k.Kernels.k_name ^ ": roundtrip live-outs") true
        (List.map snd a.Interp.live_out = List.map snd b.Interp.live_out))
    Kernels.suite

let test_roundtrip_samples () =
  let dir = "../../../examples/kernels" in
  let dir = if Sys.file_exists dir then dir else "examples/kernels" in
  Sys.readdir dir |> Array.to_list
  |> List.iter (fun file ->
         let loop = Parser.parse_file (Filename.concat dir file) in
         let reparsed = Parser.parse (Parser.to_source loop) in
         let a = Interp.run loop and b = Interp.run reparsed in
         (* registers renumber across the roundtrip, so compare live-out
            VALUES in order, not register ids *)
         check_bool (file ^ ": roundtrip") true
           (a.Interp.iterations = b.Interp.iterations
           && a.Interp.externals = b.Interp.externals
           && List.map snd a.Interp.live_out = List.map snd b.Interp.live_out))

let suite =
  suite
  @ [
      Alcotest.test_case "parser: builtin kernel roundtrip" `Quick test_roundtrip_builtin_kernels;
      Alcotest.test_case "parser: sample roundtrip" `Quick test_roundtrip_samples;
    ]
