(* Tests for the Morta executor: region lifecycle, the pause/resume
   protocol with sentinel-based pipeline flushing, scheme switching, nested
   regions, and Decima accounting. *)

open Parcae_sim

(* Engine/value types come from the platform dispatch layer (the runtime's
   own types); [Machine]/[Power]/etc. remain from [Parcae_sim] above. *)
module Engine = Parcae_platform.Engine
module Chan = Parcae_platform.Chan
module Lock = Parcae_platform.Lock
module Barrier = Parcae_platform.Barrier
open Parcae_core
open Parcae_runtime

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let machine () =
  { (Machine.test_machine ~cores:8 ()) with Machine.ctx_switch = 0; chan_op = 5; time_slice = 1_000_000 }

(* A three-stage pipeline: produce [n] items, transform (parallel), consume.
   Built with the Pipeline helpers so the flush protocol is exercised. *)
let make_pipeline ?(work = 100) eng n =
  let q1 = Chan.create eng "q1" and q2 = Chan.create eng "q2" in
  let produced = ref 0 and consumed = ref [] in
  let produce =
    Pipeline.source ~name:"produce"
      ~forward:(Pipeline.forward_to q1)
      (fun _ctx ->
        if !produced >= n then Task_status.Complete
        else begin
          Engine.compute (work / 2);
          Pipeline.send q1 !produced;
          incr produced;
          Task_status.Iterating
        end)
  in
  let transform =
    Pipeline.stage ~name:"transform" ~input:q1 ~load:(Pipeline.load q1)
      ~forward:(Pipeline.forward_to q2)
      (fun ctx v ->
        ctx.Task.hook_begin ();
        Engine.compute work;
        ctx.Task.hook_end ();
        Pipeline.send q2 (v * 2);
        Task_status.Iterating)
  in
  let consume =
    Pipeline.stage ~ttype:Task.Seq ~name:"consume" ~input:q2
      ~forward:(fun _ -> ())
      (fun _ctx v ->
        consumed := v :: !consumed;
        Task_status.Iterating)
  in
  let pd =
    Task.descriptor ~name:"pipeline"
      [ produce.Pipeline.task; transform.Pipeline.task; consume.Pipeline.task ]
  in
  let on_reset =
    Pipeline.make_reset ~stages:[ produce; transform; consume ] ~channels:[ q1; q2 ]
  in
  (pd, on_reset, produced, consumed, q1, q2)

let pipeline_config dop = Config.make [ Config.seq_task; Config.task dop; Config.seq_task ]

let test_region_completes () =
  let eng = Engine.create (machine ()) in
  let pd, on_reset, _, consumed, _, _ = make_pipeline eng 50 in
  let r = Executor.launch ~name:"p" eng [ pd ] ~on_reset (pipeline_config 2) in
  ignore (Engine.run eng);
  check_bool "region done" true (Region.is_done r);
  check_int "all items consumed" 50 (List.length !consumed);
  let sorted = List.sort compare !consumed in
  Alcotest.(check (list int)) "values correct" (List.init 50 (fun i -> i * 2)) sorted

let test_seq_consumer_order_preserved () =
  (* With transform at DoP 1 the pipeline must preserve order end-to-end. *)
  let eng = Engine.create (machine ()) in
  let pd, on_reset, _, consumed, _, _ = make_pipeline eng 30 in
  let _ = Executor.launch ~name:"p" eng [ pd ] ~on_reset (pipeline_config 1) in
  ignore (Engine.run eng);
  Alcotest.(check (list int)) "in order" (List.init 30 (fun i -> i * 2)) (List.rev !consumed)

let test_single_task_region () =
  let eng = Engine.create (machine ()) in
  let count = ref 0 in
  let t =
    Task.parallel ~name:"doall" (fun ctx ->
        match ctx.Task.get_status () with
        | Task_status.Paused -> Task_status.Paused
        | _ ->
            if !count >= 40 then Task_status.Complete
            else begin
              incr count;
              Engine.compute 10;
              Task_status.Iterating
            end)
  in
  let pd = Task.descriptor ~name:"doall" [ t ] in
  let r = Executor.launch ~name:"r" eng [ pd ] (Config.make [ Config.task 4 ]) in
  ignore (Engine.run eng);
  check_bool "done" true (Region.is_done r);
  check_int "instances" 40 !count

let test_pause_resume () =
  let eng = Engine.create (machine ()) in
  let pd, on_reset, produced, consumed, _, _ = make_pipeline ~work:2000 eng 200 in
  let observed_paused = ref false in
  let _ =
    Engine.spawn eng ~name:"morta" (fun () ->
        let r = Executor.launch ~name:"p" eng [ pd ] ~on_reset (pipeline_config 1) in
        Engine.sleep 30_000;
        let ok = Executor.pause r in
        check_bool "paused" true ok;
        observed_paused := Region.status r = Region.Paused;
        (* Pipeline flushed: everything produced has been consumed. *)
        let mid_produced = !produced and mid_consumed = List.length !consumed in
        check_bool "made progress before pause" true (mid_produced > 0);
        check_bool "progress incomplete at pause" true (mid_produced < 200);
        check_int "pipeline drained" mid_produced mid_consumed;
        Executor.resume ~config:(pipeline_config 4) r;
        Executor.await r;
        check_int "all consumed exactly once" 200 (List.length !consumed))
  in
  ignore (Engine.run eng);
  check_bool "pause observed" true !observed_paused;
  check_int "no duplicates" 200 (List.length (List.sort_uniq compare !consumed))

let test_repeated_reconfigurations () =
  (* Hammer the pause/resume path: reconfigure every 20 us across DoPs 1-6;
     no item may be lost or duplicated. *)
  let eng = Engine.create (machine ()) in
  let pd, on_reset, _, consumed, _, _ = make_pipeline ~work:300 eng 500 in
  let _ =
    Engine.spawn eng ~name:"morta" (fun () ->
        let r = Executor.launch ~name:"p" eng [ pd ] ~on_reset (pipeline_config 1) in
        let dop = ref 1 in
        while not (Region.is_done r) do
          Engine.sleep 20_000;
          dop := (!dop mod 6) + 1;
          Executor.reconfigure r (pipeline_config !dop)
        done)
  in
  ignore (Engine.run eng);
  check_int "all consumed" 500 (List.length !consumed);
  check_int "no duplicates" 500 (List.length (List.sort_uniq compare !consumed))

let test_reconfigure_changes_dop () =
  let eng = Engine.create (machine ()) in
  let pd, on_reset, _, consumed, _, _ = make_pipeline ~work:500 eng 400 in
  let _ =
    Engine.spawn eng ~name:"morta" (fun () ->
        let r = Executor.launch ~name:"p" eng [ pd ] ~on_reset (pipeline_config 1) in
        Engine.sleep 50_000;
        Executor.reconfigure r (pipeline_config 6);
        check_int "dop applied" 6 (Config.dops (Region.config r)).(1);
        check_int "one reconfiguration" 1 (Region.reconfig_count r);
        Executor.await r)
  in
  ignore (Engine.run eng);
  check_int "all consumed" 400 (List.length !consumed)

let test_scheme_switch () =
  let eng = Engine.create (machine ()) in
  let n = 300 in
  let next = ref 0 in
  let results = ref [] in
  let results_lock = Lock.create eng "results" in
  let doall name =
    Task.parallel ~name (fun ctx ->
        match ctx.Task.get_status () with
        | Task_status.Paused -> Task_status.Paused
        | _ ->
            if !next >= n then Task_status.Complete
            else begin
              let i = !next in
              incr next;
              Engine.compute 200;
              Lock.with_lock results_lock (fun () -> results := i :: !results);
              Task_status.Iterating
            end)
  in
  let scheme_a = Task.descriptor ~name:"DOANY-A" [ doall "a" ] in
  let scheme_b = Task.descriptor ~name:"DOANY-B" [ doall "b" ] in
  let _ =
    Engine.spawn eng ~name:"morta" (fun () ->
        let r =
          Executor.launch ~name:"r" eng [ scheme_a; scheme_b ]
            (Config.make ~choice:0 [ Config.task 2 ])
        in
        Engine.sleep 10_000;
        Executor.reconfigure r (Config.make ~choice:1 [ Config.task 4 ]);
        check_int "scheme switched" 1 (Region.scheme_switches r);
        Alcotest.(check string) "scheme name" "DOANY-B" (Region.scheme_name r);
        Executor.await r)
  in
  ignore (Engine.run eng);
  check_int "all processed exactly once" n (List.length (List.sort_uniq compare !results))

let test_nested_region () =
  let eng = Engine.create (machine ()) in
  let total = ref 0 in
  let make_inner () =
    let remaining = ref 10 in
    let inner =
      Task.parallel ~name:"inner" (fun _ctx ->
          if !remaining <= 0 then Task_status.Complete
          else begin
            decr remaining;
            Engine.compute 50;
            incr total;
            Task_status.Iterating
          end)
    in
    Task.descriptor ~name:"inner" [ inner ]
  in
  let outer_count = ref 0 in
  let outer =
    Task.parallel ~name:"outer"
      ~nested:[ Task.nested_choice ~name:"inner" ~seq:[ false ] make_inner ]
      (fun ctx ->
        if !outer_count >= 5 then Task_status.Complete
        else begin
          incr outer_count;
          (match ctx.Task.nested_cfg with
          | Some inner_cfg -> ctx.Task.run_nested inner_cfg
          | None ->
              Engine.compute 500;
              total := !total + 10);
          Task_status.Iterating
        end)
  in
  let pd = Task.descriptor ~name:"outer" [ outer ] in
  let cfg = Config.make [ Config.task ~nested:(Config.make [ Config.task 3 ]) 1 ] in
  let r = Executor.launch ~name:"r" eng [ pd ] cfg in
  ignore (Engine.run eng);
  check_bool "done" true (Region.is_done r);
  check_int "nested instances" 50 !total;
  check_int "thread accounting" 3 (Config.threads cfg)

let test_decima_accounting () =
  let eng = Engine.create (machine ()) in
  let pd, on_reset, _, _, _, _ = make_pipeline ~work:1000 eng 100 in
  let r = Executor.launch ~name:"p" eng [ pd ] ~on_reset (pipeline_config 2) in
  ignore (Engine.run eng);
  let d = Region.decima r in
  check_int "produce iters" 100 (Decima.iters d 0);
  check_int "transform iters" 100 (Decima.iters d 1);
  check_int "consume iters" 100 (Decima.iters d 2);
  check_bool "transform exec time measured" true (Decima.exec_time d 1 >= 900.0);
  check_bool "hooks were called" true (Decima.hook_calls d > 0)

let test_terminate () =
  let eng = Engine.create (machine ()) in
  let pd, on_reset, _, consumed, _, _ = make_pipeline eng 1_000_000 in
  let _ =
    Engine.spawn eng ~name:"morta" (fun () ->
        let r = Executor.launch ~name:"p" eng [ pd ] ~on_reset (pipeline_config 2) in
        Engine.sleep 50_000;
        Executor.terminate r;
        check_bool "done after terminate" true (Region.is_done r))
  in
  ignore (Engine.run eng);
  check_bool "partial progress only" true (List.length !consumed < 1_000_000)

let test_budget () =
  let eng = Engine.create (machine ()) in
  let pd, on_reset, _, _, _, _ = make_pipeline eng 10 in
  let r = Executor.launch ~budget:8 ~name:"p" eng [ pd ] ~on_reset (pipeline_config 2) in
  check_int "budget" 8 (Region.budget r);
  Region.set_budget r 4;
  check_int "budget updated" 4 (Region.budget r);
  check_int "threads in use" 4 (Region.threads_in_use r);
  ignore (Engine.run eng)

let test_pause_on_blocked_master () =
  (* The master blocks on an empty work queue; on_pause must inject a
     sentinel so the pause completes anyway. *)
  let eng = Engine.create (machine ()) in
  let wq = Chan.create eng "wq" in
  let served = ref 0 in
  let master =
    Pipeline.stage ~poll:true ~name:"serve" ~input:wq
      ~forward:(fun _ -> ())
      (fun _ctx () ->
        incr served;
        Task_status.Iterating)
  in
  let pd = Task.descriptor ~name:"server" [ master.Pipeline.task ] in
  let on_pause () = Pipeline.inject_flush wq in
  let on_reset = Pipeline.make_reset ~stages:[ master ] ~channels:[ wq ] in
  let paused_at = ref (-1) in
  let _ =
    Engine.spawn eng ~name:"morta" (fun () ->
        let r =
          Executor.launch ~name:"server" eng [ pd ] ~on_pause ~on_reset
            (Config.make [ Config.task 3 ])
        in
        Engine.sleep 5_000;
        (* All three lanes are blocked on the empty queue now. *)
        let ok = Executor.pause r in
        check_bool "pause succeeded despite blocked master" true ok;
        paused_at := Engine.now ();
        Executor.resume r;
        (* Feed two requests, then end the stream. *)
        Pipeline.send wq ();
        Pipeline.send wq ();
        Engine.sleep 5_000;
        Pipeline.inject_flush wq;
        Executor.await r)
  in
  ignore (Engine.run eng);
  check_bool "pause completed promptly" true (!paused_at >= 0 && !paused_at < 1_000_000);
  check_int "requests served after resume" 2 !served

let suite =
  [
    Alcotest.test_case "region: completes" `Quick test_region_completes;
    Alcotest.test_case "region: order preserved at dop 1" `Quick test_seq_consumer_order_preserved;
    Alcotest.test_case "region: single task" `Quick test_single_task_region;
    Alcotest.test_case "region: pause/resume" `Quick test_pause_resume;
    Alcotest.test_case "region: repeated reconfigurations" `Quick test_repeated_reconfigurations;
    Alcotest.test_case "region: reconfigure dop" `Quick test_reconfigure_changes_dop;
    Alcotest.test_case "region: scheme switch" `Quick test_scheme_switch;
    Alcotest.test_case "region: nested" `Quick test_nested_region;
    Alcotest.test_case "decima: accounting" `Quick test_decima_accounting;
    Alcotest.test_case "region: terminate" `Quick test_terminate;
    Alcotest.test_case "region: budget" `Quick test_budget;
    Alcotest.test_case "region: pause with blocked master" `Quick test_pause_on_blocked_master;
  ]

let test_decima_feature_registry () =
  (* The platform-feature registry of the paper's Figure 5.8: the
     mechanism developer registers named callbacks ("SystemPower", ...)
     that Morta samples. *)
  let eng = Engine.create (machine ()) in
  let d = Decima.create eng ~tasks:1 in
  Alcotest.(check (option (float 0.0))) "unknown feature" None (Decima.feature d "SystemPower");
  let calls = ref 0 in
  Decima.register_feature d "SystemPower" (fun () ->
      incr calls;
      Engine.instant_power eng);
  (match Decima.feature d "SystemPower" with
  | Some w -> check_bool "idle power" true (w >= 0.0)
  | None -> Alcotest.fail "registered feature missing");
  Decima.register_feature d "SystemPower" (fun () -> 42.0);
  Alcotest.(check (option (float 1e-9))) "re-registration replaces" (Some 42.0)
    (Decima.feature d "SystemPower");
  check_int "callback invoked" 1 !calls

let suite =
  suite
  @ [ Alcotest.test_case "decima: feature registry" `Quick test_decima_feature_registry ]
