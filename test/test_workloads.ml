(* Integration tests for the workload models: calibration sanity (speedups,
   crossovers) and mechanism behaviour on the simulated 24-thread Xeon. *)

open Parcae_sim

(* Engine/value types come from the platform dispatch layer (the runtime's
   own types); [Machine]/[Power]/etc. remain from [Parcae_sim] above. *)
module Engine = Parcae_platform.Engine
module Chan = Parcae_platform.Chan
module Lock = Parcae_platform.Lock
module Barrier = Parcae_platform.Barrier
open Parcae_workloads

let check_bool = Alcotest.(check bool)

let machine = Machine.xeon_x7460

let mk_transcode ~budget eng = Transcode.make ~budget eng
let mk_ferret ~budget eng = Ferret.make ~budget eng
let mk_dedup ~budget eng = Dedup.make ~budget eng

let test_transcode_max_throughput () =
  let thr = Experiments.max_throughput ~m:100 ~machine mk_transcode in
  (* 24 cores, ~1.68 s per video sequentially -> ~14 videos/s. *)
  check_bool (Printf.sprintf "max throughput %.2f in [10, 18]" thr) true (thr > 10.0 && thr < 18.0)

let test_transcode_inner_speedup () =
  (* At light load, inner parallelism must cut per-video execution time by
     ~6x (paper: 6.3x at 8 threads). *)
  let rate = 1.0 in
  let outer =
    Experiments.run_server ~m:30 ~machine ~rate_per_s:rate ~config:(`Named "outer-only")
      mk_transcode
  in
  let inner =
    Experiments.run_server ~m:30 ~machine ~rate_per_s:rate ~config:(`Named "inner-max")
      mk_transcode
  in
  let speedup = outer.Experiments.mean_exec_s /. inner.Experiments.mean_exec_s in
  check_bool
    (Printf.sprintf "exec speedup %.2f in [4.5, 8.5]" speedup)
    true
    (speedup > 4.5 && speedup < 8.5)

let test_transcode_throughput_crossover () =
  (* At heavy load the inner-parallel configuration must lose its advantage
     (lower throughput than outer-only): the crossover of Figure 2.4(b). *)
  let maxthr = Experiments.max_throughput ~m:100 ~machine mk_transcode in
  let rate = 1.1 *. maxthr in
  let outer =
    Experiments.run_server ~m:120 ~machine ~rate_per_s:rate ~config:(`Named "outer-only")
      mk_transcode
  in
  let inner =
    Experiments.run_server ~m:120 ~machine ~rate_per_s:rate ~config:(`Named "inner-max")
      mk_transcode
  in
  check_bool
    (Printf.sprintf "outer-only throughput %.2f >= inner-max %.2f at overload"
       outer.Experiments.throughput_rps inner.Experiments.throughput_rps)
    true
    (outer.Experiments.throughput_rps >= 0.95 *. inner.Experiments.throughput_rps)

let test_transcode_response_regimes () =
  (* Light load: inner-max has better response time.  This is the left side
     of Figure 2.4(c). *)
  let maxthr = Experiments.max_throughput ~m:100 ~machine mk_transcode in
  let light = 0.2 *. maxthr in
  let outer =
    Experiments.run_server ~m:60 ~machine ~rate_per_s:light ~config:(`Named "outer-only")
      mk_transcode
  in
  let inner =
    Experiments.run_server ~m:60 ~machine ~rate_per_s:light ~config:(`Named "inner-max")
      mk_transcode
  in
  check_bool
    (Printf.sprintf "light load: inner %.2fs < outer %.2fs" inner.Experiments.mean_response_s
       outer.Experiments.mean_response_s)
    true
    (inner.Experiments.mean_response_s < outer.Experiments.mean_response_s)

let test_ferret_even_vs_tbf () =
  let even, _, _ =
    Experiments.run_batch ~m:300 ~machine ~config:(`Named "even") mk_ferret
  in
  let tbf, _, _ =
    Experiments.run_batch ~m:300 ~machine ~config:(`Named "even")
      ~mechanism:(fun app ->
        Parcae_mechanisms.Tbf.make ?fused_choice:app.App.fused_choice ())
      mk_ferret
  in
  let gain = tbf.Experiments.throughput_rps /. even.Experiments.throughput_rps in
  check_bool
    (Printf.sprintf "TBF gain %.2fx in [1.5, 3.5] (paper: 2.35x)" gain)
    true
    (gain > 1.5 && gain < 3.5)

let test_dedup_oversubscription_hurts () =
  let even, _, _ = Experiments.run_batch ~m:300 ~machine ~config:(`Named "even") mk_dedup in
  let os, _, _ =
    Experiments.run_batch ~m:300 ~machine ~config:(`Named "oversubscribed") mk_dedup
  in
  let ratio = os.Experiments.throughput_rps /. even.Experiments.throughput_rps in
  check_bool
    (Printf.sprintf "dedup oversubscribed ratio %.2fx <= 1.1 (paper: 0.89x)" ratio)
    true (ratio <= 1.1)

let test_ferret_oversubscription_helps () =
  let even, _, _ = Experiments.run_batch ~m:300 ~machine ~config:(`Named "even") mk_ferret in
  let os, _, _ =
    Experiments.run_batch ~m:300 ~machine ~config:(`Named "oversubscribed") mk_ferret
  in
  let ratio = os.Experiments.throughput_rps /. even.Experiments.throughput_rps in
  check_bool
    (Printf.sprintf "ferret oversubscribed ratio %.2fx > 1.2 (paper: 2.12x)" ratio)
    true (ratio > 1.2)

let test_wq_linear_improves_heavy_load_response () =
  (* Under heavy load, WQ-Linear must approach outer-only response time and
     beat the static inner-max configuration. *)
  let maxthr = Experiments.max_throughput ~m:100 ~machine mk_transcode in
  let rate = 0.95 *. maxthr in
  let inner =
    Experiments.run_server ~m:120 ~machine ~rate_per_s:rate ~config:(`Named "inner-max")
      mk_transcode
  in
  let wql =
    Experiments.run_server ~m:120 ~machine ~rate_per_s:rate ~config:(`Named "inner-max")
      ~mechanism:(fun app ->
        let make_config = Option.get app.App.inner_dop_config in
        Parcae_mechanisms.Wq_linear.nested ~load:app.App.wq_load ~dpmin:1
          ~dpmax:app.App.dpmax ~qmax:20.0 ~make_config ())
      mk_transcode
  in
  check_bool
    (Printf.sprintf "WQ-Linear %.2fs <= inner-max %.2fs at heavy load"
       wql.Experiments.mean_response_s inner.Experiments.mean_response_s)
    true
    (wql.Experiments.mean_response_s <= inner.Experiments.mean_response_s *. 1.05)

let suite =
  [
    Alcotest.test_case "transcode: max throughput" `Slow test_transcode_max_throughput;
    Alcotest.test_case "transcode: inner speedup" `Slow test_transcode_inner_speedup;
    Alcotest.test_case "transcode: throughput crossover" `Slow test_transcode_throughput_crossover;
    Alcotest.test_case "transcode: response regimes" `Slow test_transcode_response_regimes;
    Alcotest.test_case "ferret: TBF beats static even" `Slow test_ferret_even_vs_tbf;
    Alcotest.test_case "dedup: oversubscription hurts" `Slow test_dedup_oversubscription_hurts;
    Alcotest.test_case "ferret: oversubscription helps" `Slow test_ferret_oversubscription_helps;
    Alcotest.test_case "transcode: WQ-Linear at heavy load" `Slow test_wq_linear_improves_heavy_load_response;
  ]
