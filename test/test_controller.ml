(* Tests for the closed-loop run-time controller (Section 6.4) and the
   platform-wide daemon (Section 6.4.3): convergence to a parallel
   configuration, gradient ascent behaviour, workload-change and
   resource-change reactions, and thread partitioning across programs. *)

open Parcae_ir
open Parcae_sim

(* Engine/value types come from the platform dispatch layer (the runtime's
   own types); [Machine]/[Power]/etc. remain from [Parcae_sim] above. *)
module Engine = Parcae_platform.Engine
module Chan = Parcae_platform.Chan
module Lock = Parcae_platform.Lock
module Barrier = Parcae_platform.Barrier
open Parcae_nona
module R = Parcae_runtime
module Config = Parcae_core.Config

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let machine = Machine.xeon_x7460

let controller_params =
  {
    R.Controller.default_params with
    R.Controller.nseq = 8;
    poll_ns = 20_000;
    monitor_ns = 10_000_000;
    change_frac = 0.3;
  }

(* Launch a compiled kernel under a controller; returns after the sim. *)
let run_with_controller ?params ?(budget = 24) ?(horizon = 60_000_000_000) ?driver loop =
  let c = Compiler.compile loop in
  let eng = Engine.create machine in
  let h = Compiler.launch ~budget eng c in
  let ctl =
    R.Controller.create
      ?params:(Some (Option.value params ~default:controller_params))
      h.Compiler.region
  in
  ignore (R.Controller.spawn eng ctl);
  Option.iter (fun f -> ignore (Engine.spawn eng ~name:"driver" (fun () -> f eng h ctl))) driver;
  ignore (Engine.run ~until:horizon eng);
  (h, ctl, eng)

let test_controller_reaches_monitor () =
  let h, ctl, _ = run_with_controller (Kernels.blackscholes ~n:8000 ()) in
  check_bool "region completed" true (R.Region.is_done h.Compiler.region);
  check_bool "semantics preserved" true (Compiler.preserves_semantics h);
  let states = R.Controller.states ctl in
  let codes = Parcae_util.Series.values states in
  check_bool "visited INIT" true (Array.exists (fun v -> v = 0.0) codes);
  check_bool "visited CALIB" true (Array.exists (fun v -> v = 1.0) codes);
  check_bool "visited OPT" true (Array.exists (fun v -> v = 2.0) codes);
  check_bool "reached MONITOR" true (Array.exists (fun v -> v = 3.0) codes)

let test_controller_beats_sequential () =
  (* Controller-managed run must be much faster than sequential. *)
  let loop = Kernels.blackscholes ~n:8000 () in
  let seq_ns = (Interp.run loop).Interp.work_ns in
  let h, _, eng = run_with_controller loop in
  check_bool "done" true (R.Region.is_done h.Compiler.region);
  let speedup = float_of_int seq_ns /. float_of_int (Engine.time eng) in
  check_bool (Printf.sprintf "speedup %.1f > 4" speedup) true (speedup > 4.0)

let test_controller_picks_parallel_scheme () =
  let h, _, _ = run_with_controller (Kernels.kmeans ~n:8000 ()) in
  let cfg = R.Region.config h.Compiler.region in
  check_bool "chose a parallel scheme" true (cfg.Config.choice > 0);
  check_bool "uses multiple threads" true (Config.threads cfg > 4)

let test_controller_keeps_recurrence_sequential () =
  (* No parallel scheme exists; the controller must settle on SEQ and the
     run must still complete correctly. *)
  let h, _, _ = run_with_controller (Kernels.recurrence ~n:5000 ()) in
  check_bool "done" true (R.Region.is_done h.Compiler.region);
  check_bool "semantics" true (Compiler.preserves_semantics h);
  check_int "SEQ scheme" 0 (R.Region.config h.Compiler.region).Config.choice

let test_controller_workload_change () =
  (* Crank the per-iteration work up mid-run: the monitor must detect the
     throughput drop and re-enter calibration. *)
  let driver _eng (h : Compiler.handle) _ctl =
    Engine.sleep 400_000_000;
    let knob = List.assoc "knob" h.Compiler.rs.Flex.arrays in
    knob.(0) <- 240_000
  in
  let h, ctl, _ =
    run_with_controller ~driver (Kernels.adaptive ~n:400_000 ~work:60_000 ())
  in
  check_bool "done" true (R.Region.is_done h.Compiler.region);
  (* The state timeline must re-enter CALIB after having reached MONITOR. *)
  let codes = Parcae_util.Series.values (R.Controller.states ctl) in
  let monitor_seen = ref false and recalibrated = ref false in
  Array.iter
    (fun v ->
      if v = 3.0 then monitor_seen := true
      else if !monitor_seen && (v = 1.0 || v = 0.0) then recalibrated := true)
    codes;
  check_bool "re-entered calibration after workload change" true !recalibrated

let test_controller_resource_change () =
  (* Shrink the region's thread budget mid-run (as the daemon would when
     another program launches); the controller must recalibrate and fit
     within the new budget. *)
  let final_threads = ref max_int in
  let driver _eng (h : Compiler.handle) ctl =
    Engine.sleep 400_000_000;
    R.Region.set_budget h.Compiler.region 6;
    R.Controller.notify_resource_change ctl;
    (* Wait for the controller to act, then sample the configuration. *)
    Engine.sleep 1_500_000_000;
    if not (R.Region.is_done h.Compiler.region) then
      final_threads := Config.threads (R.Region.config h.Compiler.region)
  in
  let h, _, _ = run_with_controller ~driver (Kernels.blackscholes ~n:300_000 ()) in
  check_bool "done" true (R.Region.is_done h.Compiler.region);
  check_bool
    (Printf.sprintf "config fits reduced budget (threads=%d)" !final_threads)
    true (!final_threads <= 6)

let test_daemon_partitions_two_programs () =
  let eng = Engine.create machine in
  let daemon = R.Daemon.create eng ~total_threads:24 in
  let launch kernel name =
    let c = Compiler.compile kernel in
    let h = Compiler.launch ~budget:24 ~name eng c in
    let ctl = R.Controller.create ~params:controller_params h.Compiler.region in
    R.Daemon.register daemon h.Compiler.region ctl;
    ignore (R.Controller.spawn eng ctl);
    h
  in
  let h1 = launch (Kernels.blackscholes ~n:9000 ()) "p1" in
  let h2 = launch (Kernels.kmeans ~n:3000 ()) "p2" in
  ignore (R.Daemon.spawn eng daemon);
  (* While both run, each budget is half the platform. *)
  check_int "p1 budget" 12 (R.Region.budget h1.Compiler.region);
  check_int "p2 budget" 12 (R.Region.budget h2.Compiler.region);
  ignore (Engine.run ~until:120_000_000_000 eng);
  check_bool "p1 done" true (R.Region.is_done h1.Compiler.region);
  check_bool "p2 done" true (R.Region.is_done h2.Compiler.region);
  check_bool "p1 semantics" true (Compiler.preserves_semantics h1);
  check_bool "p2 semantics" true (Compiler.preserves_semantics h2)

let test_gradient_ascent_converges_synthetic () =
  (* The region's throughput curve is unimodal in the DoP with a peak at 6
     (efficiency collapses beyond); the gradient ascent should settle near
     it rather than at the budget cap. *)
  let loop = Kernels.url ~n:40_000 () in
  let params = { controller_params with R.Controller.max_monitor_rounds = 1 } in
  let h, _, _ = run_with_controller ~params ~budget:12 loop in
  check_bool "done" true (R.Region.is_done h.Compiler.region);
  check_bool "semantics" true (Compiler.preserves_semantics h)

let suite =
  [
    Alcotest.test_case "controller: reaches monitor" `Quick test_controller_reaches_monitor;
    Alcotest.test_case "controller: beats sequential" `Quick test_controller_beats_sequential;
    Alcotest.test_case "controller: picks parallel scheme" `Quick test_controller_picks_parallel_scheme;
    Alcotest.test_case "controller: recurrence stays SEQ" `Quick test_controller_keeps_recurrence_sequential;
    Alcotest.test_case "controller: workload change" `Quick test_controller_workload_change;
    Alcotest.test_case "controller: resource change" `Quick test_controller_resource_change;
    Alcotest.test_case "daemon: two programs" `Quick test_daemon_partitions_two_programs;
    Alcotest.test_case "controller: bounded budget" `Quick test_gradient_ascent_converges_synthetic;
  ]

let test_energy_delay_objective () =
  (* Section 6.4's retargeting example: under Min_energy_delay2 the
     controller trades a little throughput for a lot of power when the
     marginal speedup of extra threads is poor; it must choose no more
     threads than the throughput-maximizing controller, and strictly fewer
     on a kernel with visible saturation. *)
  let run objective =
    let loop = Kernels.finegrain ~n:400_000 () in
    let c = Compiler.compile loop in
    let eng = Engine.create machine in
    let h = Compiler.launch ~budget:24 eng c in
    let params =
      { controller_params with R.Controller.objective; npar_factor = 24 }
    in
    ignore (R.Controller.spawn eng (R.Controller.create ~params h.Compiler.region));
    ignore (Engine.run ~until:600_000_000_000 eng);
    check_bool "done" true (R.Region.is_done h.Compiler.region);
    check_bool "semantics" true (Compiler.preserves_semantics h);
    Config.threads (R.Region.config h.Compiler.region)
  in
  let thr_threads = run R.Controller.Max_throughput in
  let ed2_threads = run R.Controller.Min_energy_delay2 in
  check_bool
    (Printf.sprintf "ED2 uses no more threads (%d <= %d)" ed2_threads thr_threads)
    true
    (ed2_threads <= thr_threads)

let suite =
  suite
  @ [ Alcotest.test_case "controller: energy-delay objective" `Quick test_energy_delay_objective ]
