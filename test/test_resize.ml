(* Tests for the barrier-less DoP reconfiguration (the paper's
   Section 7.2): DOANY lane spawn/retire and the in-band epoch protocol on
   alternating PS-DSWP pipelines, including the guarantee the optimization
   exists for — sequential stages never stop. *)

open Parcae_ir
open Parcae_sim

(* Engine/value types come from the platform dispatch layer (the runtime's
   own types); [Machine]/[Power]/etc. remain from [Parcae_sim] above. *)
module Engine = Parcae_platform.Engine
module Chan = Parcae_platform.Chan
module Lock = Parcae_platform.Lock
module Barrier = Parcae_platform.Barrier
open Parcae_nona
module R = Parcae_runtime
module Config = Parcae_core.Config

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let machine = Machine.xeon_x7460

let launch kernel =
  let c = Compiler.compile (kernel ()) in
  let eng = Engine.create machine in
  let h = Compiler.launch ~budget:24 eng c in
  (eng, h)

let test_doany_light_grow_shrink () =
  let eng, h = launch (fun () -> Kernels.blackscholes ~n:3000 ()) in
  let _ =
    Engine.spawn eng ~name:"driver" (fun () ->
        let region = h.Compiler.region in
        R.Executor.reconfigure region (Compiler.config_for h ~dop:4 "DOANY");
        List.iter
          (fun d ->
            Engine.sleep 2_000_000;
            if not (R.Region.is_done region) then
              R.Executor.reconfigure region (Compiler.config_for h ~dop:d "DOANY"))
          [ 12; 3; 20; 8 ];
        R.Executor.await region)
  in
  ignore (Engine.run eng);
  let region = h.Compiler.region in
  check_bool "done" true (R.Region.is_done region);
  check_bool "semantics" true (Compiler.preserves_semantics h);
  check_bool "DoP changes were barrier-less" true (R.Region.light_resizes region >= 3);
  (* Full pauses: the initial SEQ -> DOANY scheme switch, plus possibly one
     change that raced with the master's completion (the light path refuses
     regions whose master already finished). *)
  check_bool "at most one extra full reconfiguration" true
    (R.Region.reconfig_count region <= 2)

let test_psdswp_light_preserves_order () =
  (* stringsearch's [S][P][S] pipeline ends in an ordered emit: any
     misrouting across the epoch boundary breaks the output order, which
     semantics checking detects. *)
  let eng, h = launch (fun () -> Kernels.stringsearch ~n:2000 ()) in
  let _ =
    Engine.spawn eng ~name:"driver" (fun () ->
        let region = h.Compiler.region in
        R.Executor.reconfigure region (Compiler.config_for h ~dop:4 "PS-DSWP");
        List.iter
          (fun d ->
            Engine.sleep 3_000_000;
            if not (R.Region.is_done region) then
              R.Executor.reconfigure region (Compiler.config_for h ~dop:d "PS-DSWP"))
          [ 9; 2; 16; 6; 11 ];
        R.Executor.await region)
  in
  ignore (Engine.run eng);
  let region = h.Compiler.region in
  check_bool "done" true (R.Region.is_done region);
  check_bool "ordered output preserved" true (Compiler.preserves_semantics h);
  check_bool "resizes were barrier-less" true (R.Region.light_resizes region >= 4)

let test_psdswp_sequential_stages_never_stop () =
  (* The paper's Figure 7.6 claim: during a barrier-less DoP change the
     sequential stages keep executing.  We resize while watching the
     master's iteration counter: it must advance across every resize
     without the stall a full pause would show. *)
  let eng, h = launch (fun () -> Kernels.crc32 ~n:4000 ()) in
  let stalled = ref false in
  let _ =
    Engine.spawn eng ~name:"driver" (fun () ->
        let region = h.Compiler.region in
        R.Executor.reconfigure region (Compiler.config_for h ~dop:8 "PS-DSWP");
        Engine.sleep 2_000_000;
        for d = 9 to 14 do
          if not (R.Region.is_done region) then begin
            let before = h.Compiler.rs.Flex.next_iter in
            R.Executor.resize region (Compiler.config_for h ~dop:d "PS-DSWP");
            (* A full pause would halt the master for the whole drain; with
               the light resize it keeps claiming iterations. *)
            Engine.sleep 500_000;
            if h.Compiler.rs.Flex.next_iter <= before then stalled := true
          end
        done;
        R.Executor.await region)
  in
  ignore (Engine.run eng);
  check_bool "done" true (R.Region.is_done h.Compiler.region);
  check_bool "semantics" true (Compiler.preserves_semantics h);
  check_bool "master never stalled across resizes" false !stalled;
  check_int "no full pauses beyond the scheme switch" 1
    (R.Region.reconfig_count h.Compiler.region)

let test_unsupported_scheme_falls_back () =
  (* DOACROSS does not implement the epoch protocol, so DoP changes on it
     must go through the full pause. *)
  let eng, h = launch (fun () -> Kernels.crc32 ~n:2000 ()) in
  let _ =
    Engine.spawn eng ~name:"driver" (fun () ->
        let region = h.Compiler.region in
        R.Executor.reconfigure region (Compiler.config_for h ~dop:4 "DOACROSS");
        Engine.sleep 3_000_000;
        if not (R.Region.is_done region) then
          R.Executor.reconfigure region (Compiler.config_for h ~dop:8 "DOACROSS");
        R.Executor.await region)
  in
  ignore (Engine.run eng);
  check_bool "done" true (R.Region.is_done h.Compiler.region);
  check_bool "semantics" true (Compiler.preserves_semantics h);
  check_int "no light resizes on DOACROSS" 0 (R.Region.light_resizes h.Compiler.region);
  check_bool "changes went through the pause" true
    (R.Region.reconfig_count h.Compiler.region >= 2)

let test_resize_rejects_scheme_change () =
  let eng, h = launch (fun () -> Kernels.blackscholes ~n:4000 ()) in
  let checked = ref false in
  let _ =
    Engine.spawn eng ~name:"driver" (fun () ->
        let region = h.Compiler.region in
        R.Executor.reconfigure region (Compiler.config_for h ~dop:4 "DOANY");
        (match R.Executor.resize region (Compiler.config_for h ~dop:4 "PS-DSWP") with
        | () -> ()
        | exception Invalid_argument _ -> checked := true);
        R.Executor.await region)
  in
  ignore (Engine.run eng);
  check_bool "scheme change rejected by resize" true !checked

let test_light_resize_interleaved_with_pause () =
  (* Mix light resizes with full scheme switches; consistency must hold. *)
  let eng, h = launch (fun () -> Kernels.stringsearch ~n:2500 ()) in
  let _ =
    Engine.spawn eng ~name:"driver" (fun () ->
        let region = h.Compiler.region in
        R.Executor.reconfigure region (Compiler.config_for h ~dop:6 "PS-DSWP");
        Engine.sleep 3_000_000;
        R.Executor.reconfigure region (Compiler.config_for h ~dop:10 "PS-DSWP");
        Engine.sleep 3_000_000;
        R.Executor.reconfigure region (Compiler.config_for h "SEQ");
        Engine.sleep 1_000_000;
        R.Executor.reconfigure region (Compiler.config_for h ~dop:5 "PS-DSWP");
        Engine.sleep 3_000_000;
        R.Executor.reconfigure region (Compiler.config_for h ~dop:12 "PS-DSWP");
        R.Executor.await region)
  in
  ignore (Engine.run eng);
  check_bool "done" true (R.Region.is_done h.Compiler.region);
  check_int "every iteration exactly once" 2500 h.Compiler.rs.Flex.next_iter;
  check_bool "semantics" true (Compiler.preserves_semantics h);
  check_bool "some resizes were light" true (R.Region.light_resizes h.Compiler.region >= 1)

let suite =
  [
    Alcotest.test_case "resize: DOANY grow/shrink" `Quick test_doany_light_grow_shrink;
    Alcotest.test_case "resize: PS-DSWP order preserved" `Quick test_psdswp_light_preserves_order;
    Alcotest.test_case "resize: sequential stages never stop" `Quick
      test_psdswp_sequential_stages_never_stop;
    Alcotest.test_case "resize: unsupported scheme falls back" `Quick
      test_unsupported_scheme_falls_back;
    Alcotest.test_case "resize: rejects scheme change" `Quick test_resize_rejects_scheme_change;
    Alcotest.test_case "resize: interleaved with pauses" `Quick test_light_resize_interleaved_with_pause;
  ]
