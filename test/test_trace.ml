(* Tests for the observability layer (lib/obs): the ring sink, the JSONL
   and Chrome trace_event exporters, the trace oracle on a real traced
   workload run, trace determinism under a fixed seed, and Decima hook
   edge cases. *)

open Parcae_sim

(* Engine/value types come from the platform dispatch layer (the runtime's
   own types); [Machine]/[Power]/etc. remain from [Parcae_sim] above. *)
module Engine = Parcae_platform.Engine
module Chan = Parcae_platform.Chan
module Lock = Parcae_platform.Lock
module Barrier = Parcae_platform.Barrier
open Parcae_workloads
module Obs = Parcae_obs
module Event = Obs.Event
module Sink = Obs.Sink
module Trace = Obs.Trace
module Export = Obs.Export
module Oracle = Obs.Oracle
module Json = Obs.Json
module R = Parcae_runtime
module Mech = Parcae_mechanisms

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------- sink ------------------------------ *)

let hook_task e = match e.Event.kind with Event.Hook_sample h -> h.task | _ -> -1

let test_ring_order_and_overflow () =
  let s = Sink.create ~capacity:4 () in
  for i = 1 to 10 do
    Sink.record s ~t:(i * 10) (Event.Hook_sample { task = i; dt_ns = i })
  done;
  check_int "length capped" 4 (Sink.length s);
  check_int "dropped counts overwrites" 6 (Sink.dropped s);
  check_bool "retains newest, oldest first" true
    (List.map hook_task (Sink.events s) = [ 7; 8; 9; 10 ]);
  check_bool "timestamps preserved" true
    ((Sink.to_array s).(0).Event.t = 70);
  Sink.clear s;
  check_int "clear empties" 0 (Sink.length s)

let test_clear_releases_storage () =
  (* Regression: [clear] used to reset the indices but keep the ring array
     alive, so a cleared 200k-event sink still pinned its full allocation. *)
  let s = Sink.create ~capacity:8 () in
  check_int "no allocation before first event" 0 (Sink.allocated_slots s);
  for i = 1 to 12 do
    Sink.record s ~t:i (Event.Hook_sample { task = i; dt_ns = i })
  done;
  check_int "ring allocated at capacity" 8 (Sink.allocated_slots s);
  Sink.clear s;
  check_int "clear empties" 0 (Sink.length s);
  check_int "clear resets overwrite count" 0 (Sink.dropped s);
  check_int "clear releases the backing array" 0 (Sink.allocated_slots s);
  (* Recording after clear re-allocates lazily, exactly as on first use. *)
  Sink.record s ~t:99 (Event.Hook_sample { task = 1; dt_ns = 1 });
  check_int "re-allocates on next record" 8 (Sink.allocated_slots s);
  check_int "and retains the new event" 1 (Sink.length s);
  check_bool "new event readable" true
    (List.map hook_task (Sink.events s) = [ 1 ])

let test_null_sink_disabled () =
  Trace.clear ();
  check_bool "tracing off by default" false (Trace.enabled ());
  check_bool "current sink is null" true (Sink.is_null (Trace.sink ()));
  (* Emitting into the null sink is a no-op, not an error. *)
  Trace.emit ~t:0 (Event.Region_stop { region = "r" });
  let s = Sink.create () in
  Trace.with_sink s (fun () ->
      check_bool "enabled inside with_sink" true (Trace.enabled ());
      Trace.emit ~t:5 (Event.Pause { region = "r" }));
  check_bool "with_sink restores" false (Trace.enabled ());
  check_int "event landed in installed sink" 1 (Sink.length s)

(* A saturated ring must account for its losses everywhere the trace is
   consumed: the sink's drop counter, a leading overflow marker in the
   export helpers, and the metrics registry. *)
let test_saturated_ring_accounting () =
  let reg = Obs.Metrics.create () in
  let s = Sink.create ~capacity:4 () in
  Obs.Metrics.with_registry reg (fun () ->
      for i = 1 to 10 do
        Sink.record s ~t:(i * 10) (Event.Hook_sample { task = i; dt_ns = i })
      done);
  check_int "sink counts drops" 6 (Sink.dropped s);
  (* The export helpers prepend a self-describing marker... *)
  (match Export.events_of_sink s with
  | marker :: rest ->
      (match marker.Event.kind with
      | Event.Trace_overflow { dropped } -> check_int "marker carries drop count" 6 dropped
      | _ -> Alcotest.fail "expected a leading Trace_overflow marker");
      check_int "marker timestamped at oldest retained event" 70 marker.Event.t;
      check_int "retained events follow" 4 (List.length rest)
  | [] -> Alcotest.fail "saturated sink exported nothing");
  (* ...which survives the JSONL and Chrome forms. *)
  (match Export.parse_jsonl (Export.jsonl_of_sink s) with
  | { Event.kind = Event.Trace_overflow { dropped }; _ } :: _ ->
      check_int "JSONL marker round-trips" 6 dropped
  | _ -> Alcotest.fail "JSONL export lost the overflow marker");
  let chrome = Json.parse (Export.chrome_of_sink s) in
  let names = List.map (Json.get_str "name") (Json.get_list "traceEvents" chrome) in
  check_bool "Chrome export has a trace-overflow instant" true
    (List.mem "trace-overflow" names);
  (* ...and the registry saw every overwrite as it happened. *)
  let c = Obs.Metrics.counter reg "parcae_trace_dropped_total" in
  check_int "metrics counted the drops" 6 (Obs.Metrics.counter_value c);
  (* An unsaturated sink gets no marker. *)
  let s2 = Sink.create ~capacity:8 () in
  Sink.record s2 ~t:1 (Event.Hook_sample { task = 1; dt_ns = 1 });
  check_int "no marker without drops" 1 (List.length (Export.events_of_sink s2))

(* ----------------------------- exporters --------------------------- *)

(* One event per constructor, exercising every payload field. *)
let all_kinds =
  [
    Event.Region_start { region = "main"; scheme = "PS-DSWP"; threads = 7; budget = 24 };
    Event.Ctrl_state { region = "main"; state = Event.Calibrate };
    Event.Pause { region = "main" };
    Event.Chan_flush { chan = "q0"; dropped = 3 };
    Event.Dop_change
      { region = "main"; scheme = "DOANY"; old_dop = 4; new_dop = 9; budget = 24; light = false };
    Event.Resume { region = "main"; scheme = "DOANY"; threads = 9 };
    Event.Budget_grant { region = "main"; budget = 12 };
    Event.Daemon_repartition { shares = [ ("p1", 12); ("p2", 12) ]; total = 24 };
    Event.Hook_sample { task = 2; dt_ns = 1234 };
    Event.Feature_sample { name = "SystemPower"; value = 96.875 };
    Event.Cores_online { cores = 16 };
    Event.Trace_overflow { dropped = 41 };
    Event.Region_stop { region = "main" };
  ]

let all_events = List.mapi (fun i k -> Event.make ~t:(i * 1000) k) all_kinds

let test_jsonl_roundtrip_all_constructors () =
  let back = Export.parse_jsonl (Export.jsonl all_events) in
  check_bool "every constructor round-trips" true (back = all_events);
  (* Floats without a finite decimal expansion survive the text form. *)
  let awkward = [ Event.make ~t:1 (Event.Feature_sample { name = "f"; value = 0.1 }) ] in
  check_bool "0.1 round-trips exactly" true (Export.parse_jsonl (Export.jsonl awkward) = awkward)

(* The unit convention: everything in the tree is integer nanoseconds;
   only the Chrome exporter converts, to the trace_event format's float
   microseconds.  Pin the conversion so a unit regression cannot hide. *)
let test_timestamp_unit_conversion () =
  Alcotest.(check (float 0.0)) "us_of_ns is exact division by 1000" 1234.567
    (Export.us_of_ns 1_234_567);
  Alcotest.(check (float 0.0)) "sub-microsecond times keep precision" 0.001
    (Export.us_of_ns 1);
  let ev = [ Event.make ~t:2_500 (Event.Pause { region = "r" }) ] in
  (* JSONL keeps raw ns... *)
  (match Json.parse (List.hd (String.split_on_char '\n' (Export.jsonl ev))) with
  | j -> check_int "JSONL keeps integer ns" 2_500 (Json.get_int "t" j));
  (* ...Chrome converts every ts to us. *)
  let evs = Json.get_list "traceEvents" (Json.parse (Export.chrome ev)) in
  let ts =
    List.filter_map
      (fun e -> if Json.get_str "ph" e = "M" then None else Some (Json.get_float "ts" e))
      evs
  in
  check_bool "at least one timestamped record" true (ts <> []);
  List.iter (fun t -> Alcotest.(check (float 0.0)) "Chrome ts in us" 2.5 t) ts

let test_chrome_export_well_formed () =
  let j = Json.parse (Export.chrome all_events) in
  let evs = Json.get_list "traceEvents" j in
  check_bool "traceEvents non-empty" true (List.length evs >= List.length all_events);
  let phs = List.map (Json.get_str "ph") evs in
  check_bool "has duration-begin" true (List.mem "B" phs);
  check_bool "has duration-end" true (List.mem "E" phs);
  check_bool "has counters" true (List.mem "C" phs);
  check_bool "has instants" true (List.mem "i" phs);
  check_bool "has track metadata" true (List.mem "M" phs);
  (* Every non-metadata record carries a timestamp and a pid. *)
  List.iter
    (fun e ->
      ignore (Json.get_int "pid" e);
      if Json.get_str "ph" e <> "M" then ignore (Json.get_float "ts" e))
    evs

(* Chrome counter tracks carry a numeric args.value; pause windows are
   duration slices that nest inside their region's lifetime slice. *)
let chrome_counters_numeric evs =
  List.iter
    (fun e ->
      if Json.get_str "ph" e = "C" then
        let args = Option.get (Json.member "args" e) in
        match Json.member "value" args with
        | Some (Json.Int _) | Some (Json.Float _) -> ()
        | _ -> Alcotest.fail ("counter without numeric value: " ^ Json.to_string e))
    evs

let chrome_check_nesting evs =
  (* Replay each tid's B/E slices as a stack: pairing is LIFO, "paused"
     only opens inside an open "region ..." slice, and every slice closes. *)
  let stacks : (int, string list) Hashtbl.t = Hashtbl.create 7 in
  let pauses = ref 0 in
  List.iter
    (fun e ->
      let tid = Json.get_int "tid" e in
      let name = Json.get_str "name" e in
      let stack = Option.value ~default:[] (Hashtbl.find_opt stacks tid) in
      match Json.get_str "ph" e with
      | "B" ->
          if name = "paused" then begin
            incr pauses;
            (match stack with
            | top :: _ when String.length top >= 6 && String.sub top 0 6 = "region" -> ()
            | _ -> Alcotest.fail "paused slice opened outside a region slice")
          end;
          Hashtbl.replace stacks tid (name :: stack)
      | "E" -> (
          match stack with
          | top :: rest ->
              (* An E record names the slice family it closes ("region" /
                 "paused"); the B side may carry a suffix ("region DOANY"). *)
              check_bool ("E closes matching B: " ^ top ^ " vs " ^ name) true
                (top = name || (String.length top >= String.length name
                                && String.sub top 0 (String.length name) = name));
              Hashtbl.replace stacks tid rest
          | [] -> Alcotest.fail ("E without open slice on tid " ^ string_of_int tid))
      | _ -> ())
    evs;
  Hashtbl.iter
    (fun tid stack ->
      check_int ("all slices closed on tid " ^ string_of_int tid) 0 (List.length stack))
    stacks;
  !pauses

(* ------------------------- traced real run -------------------------- *)

let machine = Machine.xeon_x7460

let traced_batch ?mechanism ?(m = 25) ?(seed = 11) ~config mk =
  let sink = Sink.create ~capacity:200_000 () in
  let r, _, _ =
    Trace.with_sink sink (fun () -> Experiments.run_batch ~m ~seed ~machine ?mechanism ~config mk)
  in
  (r, sink)

let wqt_h (app : App.t) =
  Mech.Wqt_h.make ~load:app.App.wq_load ~threshold:8.0 ~non:3 ~noff:3
    ~light:(App.config app "inner-max") ~heavy:(App.config app "outer-only") ()

let test_traced_run_exports_and_oracle () =
  let r, sink =
    traced_batch ~mechanism:wqt_h ~config:(`Named "outer-only") (fun ~budget eng ->
        Bzip.make ~budget eng)
  in
  check_int "all requests completed" r.Experiments.submitted r.Experiments.completed;
  let events = Sink.events sink in
  check_bool "no overflow at this size" true (Sink.dropped sink = 0);
  check_bool "captured the protocol" true (List.length events > 3);
  check_bool "real trace round-trips via JSONL" true
    (Export.parse_jsonl (Export.jsonl events) = events);
  let j = Json.parse (Export.chrome events) in
  check_bool "real trace exports to Chrome JSON" true (Json.get_list "traceEvents" j <> []);
  match Oracle.check ~require_flush:true events with
  | Ok st ->
      check_int "one region" 1 st.Oracle.regions;
      check_bool "saw at least one pause" true (st.Oracle.pauses >= 1)
  | Error vs -> Alcotest.fail (Oracle.violations_to_string vs)

let test_chrome_real_run_counters_and_nesting () =
  let _, sink =
    traced_batch ~mechanism:wqt_h ~config:(`Named "outer-only") (fun ~budget eng ->
        Bzip.make ~budget eng)
  in
  let evs = Json.get_list "traceEvents" (Json.parse (Export.chrome (Sink.events sink))) in
  chrome_counters_numeric evs;
  let pauses = chrome_check_nesting evs in
  check_bool "at least one pause window exported" true (pauses >= 1);
  (* The synthetic all-constructor stream must satisfy the same shape. *)
  let all = Json.get_list "traceEvents" (Json.parse (Export.chrome all_events)) in
  chrome_counters_numeric all;
  check_int "synthetic stream has one pause window" 1 (chrome_check_nesting all)

let test_trace_determinism () =
  (* Same seed, same workload, same mechanism: the traces must be
     byte-identical in their canonical (JSONL) form. *)
  let run () =
    let _, sink =
      traced_batch ~seed:23
        ~mechanism:(fun (app : App.t) -> Mech.Tbf.make ?fused_choice:app.App.fused_choice ())
        ~config:(`Named "even")
        (fun ~budget eng -> Ferret.make ~budget eng)
    in
    Export.jsonl (Sink.events sink)
  in
  let a = run () and b = run () in
  check_bool "trace is non-trivial" true (String.length a > 100);
  check_string "same seed, byte-identical traces" a b

(* ------------------------- Decima edge cases ------------------------ *)

let test_decima_hook_edges () =
  let eng = Engine.create (Machine.test_machine ~cores:4 ()) in
  let d = R.Decima.create eng ~tasks:2 in
  let sink = Sink.create () in
  Trace.with_sink sink (fun () ->
      let _ =
        Engine.spawn eng ~name:"probe" (fun () ->
            let slot = R.Decima.make_slot () in
            (* hook_end without a matching hook_begin: counted as a call,
               but records no sample. *)
            R.Decima.hook_end d ~task:0 slot;
            check_int "unmatched end: no sample" 0
              (List.length (List.filter (fun e -> hook_task e >= 0) (Sink.events sink)));
            (* Out-of-range task indices are ignored, not fatal. *)
            R.Decima.tick d 7;
            R.Decima.tick d (-1);
            check_int "out-of-range tick ignored" 0 (R.Decima.iters d 0 + R.Decima.iters d 1);
            R.Decima.hook_begin d slot;
            Engine.compute 500;
            R.Decima.hook_end d ~task:99 slot;
            check_int "hooks all counted" 3 (R.Decima.hook_calls d);
            check_int "out-of-range end: no sample" 0
              (List.length (List.filter (fun e -> hook_task e >= 0) (Sink.events sink)));
            (* reset mid-region while a hook slot is open: the pending
               sample lands in the new, larger task table. *)
            R.Decima.hook_begin d slot;
            R.Decima.reset d ~tasks:5;
            Engine.compute 300;
            R.Decima.hook_end d ~task:4 slot;
            check_int "task table resized" 5 (R.Decima.task_count d);
            check_bool "pending sample recorded after reset" true (R.Decima.exec_time d 4 > 0.0))
      in
      ignore (Engine.run eng));
  check_bool "exactly the post-reset sample was traced" true
    (List.map hook_task (List.filter (fun e -> hook_task e >= 0) (Sink.events sink)) = [ 4 ])

let suite =
  [
    Alcotest.test_case "sink: ring order and overflow" `Quick test_ring_order_and_overflow;
    Alcotest.test_case "sink: clear releases the ring allocation" `Quick
      test_clear_releases_storage;
    Alcotest.test_case "sink: null sink disables tracing" `Quick test_null_sink_disabled;
    Alcotest.test_case "sink: saturated ring accounts for drops" `Quick
      test_saturated_ring_accounting;
    Alcotest.test_case "export: JSONL round-trips all constructors" `Quick
      test_jsonl_roundtrip_all_constructors;
    Alcotest.test_case "export: ns-to-us conversion pinned" `Quick
      test_timestamp_unit_conversion;
    Alcotest.test_case "export: Chrome trace is well-formed" `Quick test_chrome_export_well_formed;
    Alcotest.test_case "trace: real run exports and satisfies oracle" `Quick
      test_traced_run_exports_and_oracle;
    Alcotest.test_case "export: Chrome counters numeric, slices nest" `Quick
      test_chrome_real_run_counters_and_nesting;
    Alcotest.test_case "trace: same seed gives identical traces" `Quick test_trace_determinism;
    Alcotest.test_case "decima: hook edge cases" `Quick test_decima_hook_edges;
  ]
