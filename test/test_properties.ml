(* Property-based tests (qcheck, registered as alcotest cases).

   The central property is semantics preservation: for random IR loops from
   a DOANY-safe grammar, executing the Nona-compiled program under any
   scheme, any DoP, and any sequence of random mid-run reconfigurations
   produces exactly the observable state of the sequential interpreter.

   Supporting properties cover the configuration algebra, the simulator's
   determinism, channel FIFO behaviour, the index-analysis conflict
   classifier (validated against brute force), and statistics. *)

open Parcae_ir
open Parcae_pdg
open Parcae_sim

(* Engine/value types come from the platform dispatch layer (the runtime's
   own types); [Machine]/[Power]/etc. remain from [Parcae_sim] above. *)
module Engine = Parcae_platform.Engine
module Chan = Parcae_platform.Chan
module Lock = Parcae_platform.Lock
module Barrier = Parcae_platform.Barrier
open Parcae_nona
module R = Parcae_runtime
module Config = Parcae_core.Config
module Stats = Parcae_util.Stats

let machine = Machine.xeon_x7460

(* ------------------------------------------------------------------ *)
(* A generator of random DOANY-safe loops.                             *)
(*                                                                      *)
(* Grammar: one induction variable; loads from a source array at [i];   *)
(* a chain of random binops over available registers and constants;     *)
(* optionally a reduction and/or a commutative set-insert; a store to   *)
(* dst[i]; a constant Work.  Every loop from this grammar admits DOANY  *)
(* (all carried dependences are induction/reduction/commutative), and   *)
(* its observables are iteration-order independent.                     *)
(* ------------------------------------------------------------------ *)

type spec = {
  trip : int;
  src : int array;
  ops : (int * int * int) list;  (* (op selector, operand selector a, b) *)
  reduction : int option;  (* selector for op kind *)
  insert : bool;
  store : bool;
  work : int;
}

let gen_spec =
  QCheck.Gen.(
    let* trip = int_range 3 40 in
    let* src = array_size (return trip) (int_range (-100) 100) in
    let* n_ops = int_range 1 6 in
    let* ops = list_size (return n_ops) (triple (int_range 0 100) (int_range 0 100) (int_range 0 100)) in
    let* reduction = opt (int_range 0 3) in
    let* insert = bool in
    let* store = bool in
    let* work = int_range 100 2000 in
    return { trip; src; ops; reduction; insert; store; work })

let binop_of_selector s =
  match s mod 8 with
  | 0 -> Instr.Add
  | 1 -> Instr.Sub
  | 2 -> Instr.Mul
  | 3 -> Instr.Xor
  | 4 -> Instr.And
  | 5 -> Instr.Or
  | 6 -> Instr.Min
  | _ -> Instr.Max

let red_of_selector s =
  match s mod 4 with 0 -> Instr.Add | 1 -> Instr.Min | 2 -> Instr.Max | _ -> Instr.Xor

let loop_of_spec spec =
  let b = Builder.create "random" in
  Builder.array b "src" spec.src;
  if spec.store then Builder.array b "dst" (Array.make spec.trip 0);
  let i = Builder.induction b ~from:0 ~step:1 in
  let x = Builder.load b "src" (Instr.Reg i) in
  Builder.work b (Instr.Const spec.work);
  let pool = ref [ i; x ] in
  List.iter
    (fun (ops, oa, ob) ->
      let pick sel =
        if sel mod 3 = 0 then Instr.Const ((sel mod 17) - 8)
        else Instr.Reg (List.nth !pool (sel mod List.length !pool))
      in
      let r = Builder.binop b (binop_of_selector ops) (pick oa) (pick ob) in
      pool := r :: !pool)
    spec.ops;
  let top = List.hd !pool in
  (match spec.reduction with
  | Some sel ->
      let r = Builder.reduce b (red_of_selector sel) ~init:(Instr.Const 1) (Instr.Reg top) in
      Builder.live_out b r
  | None -> ());
  if spec.insert then
    ignore (Builder.call ~commutative:true ~returns:false b "insert" (Instr.Reg top));
  if spec.store then Builder.store b "dst" (Instr.Reg i) (Instr.Reg top);
  Builder.finish ~trip:(Loop.Count spec.trip) b

(* Random run plan: initial scheme/dop plus a list of (delay ns, scheme
   selector, dop) reconfigurations. *)
type plan = { p_initial : int * int; p_steps : (int * int * int) list }

let gen_plan =
  QCheck.Gen.(
    let* initial = pair (int_range 0 100) (int_range 1 12) in
    let* steps =
      list_size (int_range 0 4) (triple (int_range 1_000 200_000) (int_range 0 100) (int_range 1 12))
    in
    return { p_initial = initial; p_steps = steps })

let arb_case =
  QCheck.make
    ~print:(fun (spec, _) ->
      Format.asprintf "%a" Loop.pp (loop_of_spec spec))
    QCheck.Gen.(pair gen_spec gen_plan)

let run_random_case (spec, plan) =
  let loop = loop_of_spec spec in
  let c = Compiler.compile loop in
  let eng = Engine.create machine in
  let h = Compiler.launch ~budget:12 eng c in
  let pick_config (sel, dop) =
    let name = List.nth h.Compiler.names (sel mod List.length h.Compiler.names) in
    Compiler.config_for h ~dop:(max 1 (min 12 dop)) name
  in
  let _ =
    Engine.spawn eng ~name:"driver" (fun () ->
        R.Executor.reconfigure h.Compiler.region (pick_config plan.p_initial);
        List.iter
          (fun (delay, sel, dop) ->
            Engine.sleep delay;
            if not (R.Region.is_done h.Compiler.region) then
              R.Executor.reconfigure h.Compiler.region (pick_config (sel, dop)))
          plan.p_steps;
        R.Executor.await h.Compiler.region)
  in
  ignore (Engine.run ~until:60_000_000_000 eng);
  R.Region.is_done h.Compiler.region && Compiler.preserves_semantics h

let prop_semantics_preserved =
  QCheck.Test.make ~name:"random loops: semantics preserved under random reconfiguration"
    ~count:60 arb_case run_random_case

(* Every random loop from the grammar must be DOANY-applicable. *)
let prop_grammar_doany =
  QCheck.Test.make ~name:"random loops: grammar is DOANY-safe" ~count:60
    (QCheck.make gen_spec)
    (fun spec -> Doany.applicable (Pdg.build (loop_of_spec spec)))

(* PS-DSWP partitions of random loops satisfy Invariant 4.3.1. *)
let prop_partition_invariant =
  QCheck.Test.make ~name:"random loops: PS-DSWP invariant 4.3.1" ~count:60
    (QCheck.make gen_spec)
    (fun spec ->
      let pdg = Pdg.build (loop_of_spec spec) in
      let scc = Scc.build pdg in
      match Psdswp.partition scc with
      | None -> true
      | Some stages -> Psdswp.check_invariant pdg stages)

(* ------------------------------------------------------------------ *)
(* Configuration algebra.                                              *)
(* ------------------------------------------------------------------ *)

let gen_config =
  QCheck.Gen.(
    let* n = int_range 1 6 in
    let* dops = list_size (return n) (int_range 1 24) in
    return (Config.make (List.map Config.task dops)))

let prop_config_threads =
  QCheck.Test.make ~name:"config: threads = sum of dops for flat configs" ~count:200
    (QCheck.make gen_config)
    (fun cfg -> Config.threads cfg = Array.fold_left ( + ) 0 (Config.dops cfg))

let prop_config_with_dop =
  QCheck.Test.make ~name:"config: with_dop updates exactly one slot" ~count:200
    (QCheck.make QCheck.Gen.(pair gen_config (pair (int_range 0 5) (int_range 1 24))))
    (fun (cfg, (i, d)) ->
      let n = Array.length cfg.Config.tasks in
      let i = i mod n in
      let cfg' = Config.with_dop cfg i d in
      (Config.dops cfg').(i) = d
      && Array.for_all2 (fun a b -> a = b)
           (Array.mapi (fun j v -> if j = i then -1 else v) (Config.dops cfg))
           (Array.mapi (fun j v -> if j = i then -1 else v) (Config.dops cfg')))

(* ------------------------------------------------------------------ *)
(* Simulator determinism.                                              *)
(* ------------------------------------------------------------------ *)

let prop_engine_deterministic =
  QCheck.Test.make ~name:"engine: identical runs produce identical traces" ~count:20
    (QCheck.make QCheck.Gen.(pair (int_range 1 6) (list_size (int_range 1 20) (int_range 1 2000))))
    (fun (cores, works) ->
      let run () =
        let eng = Engine.create (Machine.test_machine ~cores ()) in
        let log = Buffer.create 64 in
        List.iteri
          (fun i w ->
            ignore
              (Engine.spawn eng
                 ~name:(string_of_int i)
                 (fun () ->
                   Engine.compute w;
                   Buffer.add_string log (Printf.sprintf "%d@%d;" i (Engine.now ())))))
          works;
        ignore (Engine.run eng);
        (Buffer.contents log, Engine.time eng)
      in
      run () = run ())

(* ------------------------------------------------------------------ *)
(* Channel FIFO under a single producer and consumer.                  *)
(* ------------------------------------------------------------------ *)

let prop_chan_fifo =
  QCheck.Test.make ~name:"chan: single-producer single-consumer preserves order" ~count:50
    (QCheck.make QCheck.Gen.(pair (int_range 0 4) (list_size (int_range 1 40) (int_range 0 1000))))
    (fun (cap, items) ->
      let eng = Engine.create (Machine.test_machine ()) in
      let ch = Chan.create ~capacity:cap eng "c" in
      let out = ref [] in
      let n = List.length items in
      ignore
        (Engine.spawn eng ~name:"p" (fun () -> List.iter (fun v -> Chan.send ch v) items));
      ignore
        (Engine.spawn eng ~name:"c" (fun () ->
             for _ = 1 to n do
               out := Chan.recv ch :: !out
             done));
      ignore (Engine.run eng);
      List.rev !out = items)

(* ------------------------------------------------------------------ *)
(* Index analysis vs brute force.                                      *)
(* ------------------------------------------------------------------ *)

(* Brute-force check: do accesses [i*step + o1] and [i*step + o2] ever
   touch the same element in different iterations / the same iteration? *)
let brute_conflict ~step ~o1 ~o2 ~iters =
  let same_iter = ref false and cross = ref false in
  for i1 = 0 to iters - 1 do
    for i2 = 0 to iters - 1 do
      if (i1 * step) + o1 = (i2 * step) + o2 then
        if i1 = i2 then same_iter := true else cross := true
    done
  done;
  (!same_iter, !cross)

let prop_alias_affine =
  QCheck.Test.make ~name:"alias: affine conflict matches brute force" ~count:300
    (QCheck.make QCheck.Gen.(triple (int_range 1 4) (int_range 0 6) (int_range 0 6)))
    (fun (step, o1, o2) ->
      (* Build a loop: store a[i*step' .. ] via offsets from an induction
         with the given step. *)
      let b = Builder.create "alias" in
      Builder.array b "a" (Array.make 200 0);
      let i = Builder.induction b ~from:0 ~step in
      let i1 = Builder.add b (Instr.Reg i) (Instr.Const o1) in
      let i2 = Builder.add b (Instr.Reg i) (Instr.Const o2) in
      Builder.store b "a" (Instr.Reg i1) (Instr.Const 1);
      Builder.store b "a" (Instr.Reg i2) (Instr.Const 2);
      let loop = Builder.finish ~trip:(Loop.Count 20) b in
      let inds = Alias.inductions loop in
      let c1 = Alias.classify_index loop inds (Instr.Reg i1) in
      let c2 = Alias.classify_index loop inds (Instr.Reg i2) in
      let same_iter, cross = brute_conflict ~step ~o1 ~o2 ~iters:20 in
      match Alias.conflict inds c1 c2 with
      | Alias.Same_iteration -> same_iter && not cross
      | Alias.Cross_iteration _ -> cross
      | Alias.No_conflict -> (not same_iter) && not cross
      | Alias.May_conflict -> true (* conservative is always sound *))

(* Mixed affine-vs-fixed accesses: a[i*step + o1] against the fixed cell
   a[o2], classified exactly.  The classifier may only say No_conflict
   when no iteration of the trip ever touches the fixed cell. *)
let prop_alias_mixed =
  QCheck.Test.make ~name:"alias: affine vs fixed matches brute force" ~count:300
    (QCheck.make QCheck.Gen.(quad (int_range 1 4) (int_range 1 3) (int_range 0 6) (int_range 0 30)))
    (fun (scale, step, o1, o2) ->
      let trip = 10 in
      let b = Builder.create "mixed" in
      Builder.array b "a" (Array.make 200 0);
      let i = Builder.induction b ~from:0 ~step in
      let s = Builder.mul b (Instr.Reg i) (Instr.Const scale) in
      let a1 = Builder.add b (Instr.Reg s) (Instr.Const o1) in
      let x = Builder.load b "a" (Instr.Const o2) in
      Builder.store b "a" (Instr.Reg a1) (Instr.Reg x);
      let loop = Builder.finish ~trip:(Loop.Count trip) b in
      let inds = Alias.inductions loop in
      let c1 = Alias.classify_index loop inds (Instr.Reg a1) in
      let c2 = Alias.classify_index loop inds (Instr.Const o2) in
      let hit = ref false in
      for t = 0 to trip - 1 do
        if (scale * step * t) + o1 = o2 then hit := true
      done;
      match Alias.conflict ~trip inds c1 c2 with
      | Alias.No_conflict -> not !hit
      | Alias.May_conflict | Alias.Same_iteration | Alias.Cross_iteration _ -> !hit)

(* Unmutated plans from the DOANY-safe grammar must verify cleanly: the
   verifier never rejects what the compiler legitimately emits. *)
let prop_plans_verify_clean =
  QCheck.Test.make ~name:"random loops: emitted plans verify cleanly" ~count:60
    (QCheck.make gen_spec)
    (fun spec ->
      let c = Compiler.compile ~verify:false (loop_of_spec spec) in
      let pdg = c.Compiler.pdg in
      Parcae_analysis.Diag.count_errors (Verify.pdg_integrity pdg) = 0
      && List.for_all
           (fun s -> Parcae_analysis.Diag.count_errors (Verify.plan pdg s) = 0)
           (Compiler.schemes c))

(* ------------------------------------------------------------------ *)
(* Statistics.                                                         *)
(* ------------------------------------------------------------------ *)

let prop_percentile =
  QCheck.Test.make ~name:"stats: percentile bounded and monotone" ~count:200
    (QCheck.make
       QCheck.Gen.(
         triple
           (list_size (int_range 1 50) (float_bound_exclusive 1000.0))
           (float_bound_inclusive 100.0) (float_bound_inclusive 100.0)))
    (fun (xs, p1, p2) ->
      let xs = Array.of_list xs in
      let lo, hi = Stats.min_max xs in
      let v1 = Stats.percentile p1 xs and v2 = Stats.percentile p2 xs in
      v1 >= lo -. 1e-9 && v1 <= hi +. 1e-9
      && if p1 <= p2 then v1 <= v2 +. 1e-9 else v1 >= v2 -. 1e-9)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_semantics_preserved;
      prop_grammar_doany;
      prop_partition_invariant;
      prop_config_threads;
      prop_config_with_dop;
      prop_engine_deterministic;
      prop_chan_fifo;
      prop_alias_affine;
      prop_alias_mixed;
      prop_plans_verify_clean;
      prop_percentile;
    ]
