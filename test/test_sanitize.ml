(* Tests for the happens-before race sanitizer and its static↔dynamic
   differential auditor: vector-clock edge semantics, clean-kernel runs,
   fault-injected soundness violations (S701/S702), precision gaps
   (G711), and a seeded differential between the sanitizer's verdicts
   and the static PDG classification over generated kernels. *)

open Parcae_ir
open Parcae_pdg
open Parcae_nona
module Hb = Parcae_obs.Hb
module Metrics = Parcae_obs.Metrics
module Diag = Parcae_analysis.Diag

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let has_code code diags = List.exists (fun d -> d.Diag.code = code) diags
let total_races r = List.fold_left (fun a sr -> a + List.length sr.Sanitize.sr_races) 0 r.Sanitize.runs

(* ------------------------- Hb edge semantics ------------------------- *)

(* Two tasks touching the same cell with no edge between them race. *)
let test_hb_unordered () =
  let tr = Hb.create () in
  Hb.with_tracker tr (fun () ->
      Hb.on_spawn ~parent:0 ~child:1;
      Hb.on_spawn ~parent:0 ~child:2;
      Hb.on_access ~task:1 ~arr:"a" ~idx:3 ~node:10 ~write:true;
      Hb.on_access ~task:2 ~arr:"a" ~idx:3 ~node:11 ~write:true);
  check_int "one racing pair" 1 (List.length (Hb.races tr));
  check_int "one race occurrence" 1 (Hb.race_count tr);
  let p = List.hd (Hb.races tr) in
  check_bool "nodes attributed" true
    (min p.Hb.p_src p.Hb.p_dst = 10 && max p.Hb.p_src p.Hb.p_dst = 11)

(* The spawn edge orders the parent's prior accesses before the child. *)
let test_hb_spawn_edge () =
  let tr = Hb.create () in
  Hb.with_tracker tr (fun () ->
      Hb.on_access ~task:0 ~arr:"a" ~idx:0 ~node:1 ~write:true;
      Hb.on_spawn ~parent:0 ~child:1;
      Hb.on_access ~task:1 ~arr:"a" ~idx:0 ~node:2 ~write:true);
  check_int "spawn orders parent before child" 0 (List.length (Hb.races tr));
  check_int "collision still recorded" 1 (List.length (Hb.pairs tr))

(* A message edge (exact (chan, seq) pairing) orders sender before receiver;
   a second unrelated task still races. *)
let test_hb_message_edge () =
  let tr = Hb.create () in
  Hb.with_tracker tr (fun () ->
      Hb.on_spawn ~parent:0 ~child:1;
      Hb.on_spawn ~parent:0 ~child:2;
      Hb.on_spawn ~parent:0 ~child:3;
      Hb.on_access ~task:1 ~arr:"a" ~idx:7 ~node:1 ~write:true;
      Hb.on_send ~task:1 ~chan:"c" ~seq:0;
      Hb.on_recv ~task:2 ~chan:"c" ~seq:0;
      Hb.on_access ~task:2 ~arr:"a" ~idx:7 ~node:2 ~write:true);
  check_int "send/recv orders the pair" 0 (List.length (Hb.races tr));
  Hb.with_tracker tr (fun () ->
      Hb.on_access ~task:3 ~arr:"a" ~idx:7 ~node:3 ~write:false);
  check_int "unrelated reader races with the write" 1 (List.length (Hb.races tr))

(* The cumulative channel clock (seq = -1, the native over-approximation)
   still orders a sender's accesses before a later receiver. *)
let test_hb_cumulative_channel () =
  let tr = Hb.create () in
  Hb.with_tracker tr (fun () ->
      Hb.on_spawn ~parent:0 ~child:1;
      Hb.on_spawn ~parent:0 ~child:2;
      Hb.on_access ~task:1 ~arr:"a" ~idx:0 ~node:1 ~write:true;
      Hb.on_send ~task:1 ~chan:"c" ~seq:(-1);
      Hb.on_recv ~task:2 ~chan:"c" ~seq:(-1);
      Hb.on_access ~task:2 ~arr:"a" ~idx:0 ~node:2 ~write:true);
  check_int "cumulative clock orders" 0 (List.length (Hb.races tr))

(* Lock release/acquire and task-done/join edges order conflicting pairs. *)
let test_hb_lock_and_join () =
  let tr = Hb.create () in
  Hb.with_tracker tr (fun () ->
      Hb.on_spawn ~parent:0 ~child:1;
      Hb.on_spawn ~parent:0 ~child:2;
      Hb.on_access ~task:1 ~arr:"a" ~idx:0 ~node:1 ~write:true;
      Hb.on_release ~task:1 ~key:"lock:l";
      Hb.on_acquire ~task:2 ~key:"lock:l";
      Hb.on_access ~task:2 ~arr:"a" ~idx:0 ~node:2 ~write:true;
      Hb.on_access ~task:2 ~arr:"b" ~idx:0 ~node:3 ~write:true;
      Hb.on_task_done ~task:2;
      Hb.on_join ~task:0 ~joined:2;
      Hb.on_access ~task:0 ~arr:"b" ~idx:0 ~node:4 ~write:true);
  check_int "lock and join edges order everything" 0 (List.length (Hb.races tr));
  check_int "both collisions recorded" 2 (List.length (Hb.pairs tr))

(* A write ordered after a prior write resets the read set: a later
   unordered reader races with the NEW write, counted once. *)
let test_hb_write_reset () =
  let tr = Hb.create () in
  Hb.with_tracker tr (fun () ->
      Hb.on_spawn ~parent:0 ~child:1;
      Hb.on_access ~task:0 ~arr:"a" ~idx:0 ~node:1 ~write:true;
      Hb.on_release ~task:0 ~key:"lock:l";
      Hb.on_acquire ~task:1 ~key:"lock:l";
      Hb.on_access ~task:1 ~arr:"a" ~idx:0 ~node:2 ~write:true;
      Hb.on_spawn ~parent:0 ~child:2;
      Hb.on_access ~task:2 ~arr:"a" ~idx:0 ~node:3 ~write:false);
  check_int "reader races only with the latest write" 1 (Hb.race_count tr)

(* ------------------------- builder locs (satellite) ------------------- *)

(* Every node the builder emits carries a source location, synthetic
   ("<name>":emission-order) when the kernel gave none — the sanitizer's
   source attribution depends on it. *)
let test_builder_locs () =
  List.iter
    (fun k ->
      let loop = k.Kernels.make () in
      check_bool (k.Kernels.k_name ^ " has locs") true (Array.length loop.Loop.locs > 0);
      Array.iteri
        (fun i l ->
          check_bool
            (Printf.sprintf "%s node %d has a loc" k.Kernels.k_name i)
            true (l <> None))
        loop.Loop.locs)
    Kernels.suite

(* ------------------------- clean kernels ------------------------------ *)

let small name =
  match name with
  | "blackscholes" -> Kernels.blackscholes ~n:192 ()
  | "crc32" -> Kernels.crc32 ~n:192 ()
  | "url" -> Kernels.url ~n:192 ()
  | "kmeans" -> Kernels.kmeans ~n:192 ()
  | "histogram" -> Kernels.histogram ~n:256 ()
  | "montecarlo" -> Kernels.montecarlo ~n:192 ()
  | "stringsearch" -> Kernels.stringsearch ~n:192 ()
  | _ -> Kernels.recurrence ~n:192 ()

(* Every shipped kernel under every emitted scheme: no soundness errors,
   no races, semantics preserved under the tracker. *)
let test_clean_kernels () =
  List.iter
    (fun k ->
      let r = Sanitize.run (small k.Kernels.k_name) in
      check_int (k.Kernels.k_name ^ " sanitize errors") 0 (Diag.count_errors r.Sanitize.diags);
      check_int (k.Kernels.k_name ^ " races") 0 (total_races r);
      List.iter
        (fun sr ->
          check_bool
            (Printf.sprintf "%s %s semantics" k.Kernels.k_name sr.Sanitize.sr_scheme)
            true sr.Sanitize.sr_semantics_ok)
        r.Sanitize.runs)
    Kernels.suite

(* The sanitizer's throughput counters land in the installed registry. *)
let test_sanitizer_counters () =
  let reg = Metrics.create () in
  Metrics.with_registry reg (fun () ->
      ignore (Sanitize.run (Kernels.blackscholes ~n:64 ())));
  let value name =
    List.fold_left
      (fun acc (f : Metrics.fam_snapshot) ->
        if f.Metrics.name = name then
          List.fold_left
            (fun a (s : Metrics.sample) ->
              match s.Metrics.value with Metrics.Counter_v n -> a + n | _ -> a)
            acc f.Metrics.samples
        else acc)
      0 (Metrics.snapshot reg)
  in
  check_bool "accesses counter advanced" true (value "parcae_sanitizer_accesses_total" > 0);
  check_int "no races counted" 0 (value "parcae_sanitizer_races_total")

(* ------------------------- fault injection ---------------------------- *)

(* Stripping carried memory dependences turns histogram into a
   verifier-passed DOANY that races: S701 must fire (and S702, since the
   doctored PDG also lost the edge the collision needs). *)
let test_inject_histogram_sim () =
  let r = Sanitize.run ~inject:true ~dop:3 (Kernels.histogram ~n:256 ()) in
  check_bool "S701 fired" true (has_code "S701" r.Sanitize.diags);
  check_bool "S702 fired" true (has_code "S702" r.Sanitize.diags);
  check_bool "errors present" true (Diag.count_errors r.Sanitize.diags > 0);
  check_bool "DOANY raced" true (total_races r > 0)

(* The injected DOANY is emitted and passes the verifier before racing —
   the failure is invisible statically. *)
let test_inject_passes_verifier () =
  let c = Sanitize.inject_unsound (Compiler.compile (Kernels.histogram ~n:256 ())) in
  check_bool "DOANY planned" true (c.Compiler.doany <> None);
  List.iter
    (fun s -> check_int "verifier passes" 0 (Diag.count_errors (Verify.plan c.Compiler.pdg s)))
    (Compiler.schemes c)

(* Same injection detected on the native backend: real domains, real
   interleavings, same S-code. *)
let test_inject_histogram_native () =
  let r =
    Sanitize.run ~backend:(Sanitize.Native_backend (Some 4)) ~inject:true ~dop:3
      (Kernels.histogram ~n:256 ())
  in
  check_bool "S701 fired on native" true (has_code "S701" r.Sanitize.diags)

(* ------------------------- precision gaps ----------------------------- *)

(* With 48 iterations histogram's 64 bins never collide across iterations:
   the May-dependence is a precision gap (G711, info — not an error). *)
let test_g711_gap () =
  let r = Sanitize.run ~dop:3 (Kernels.histogram ~n:48 ()) in
  check_int "no errors" 0 (Diag.count_errors r.Sanitize.diags);
  check_bool "G711 reported" true (has_code "G711" r.Sanitize.diags)

(* ------------------------- seeded differential ------------------------ *)

(* The generator's by-construction label, the static PDG classification,
   and the sanitizer's dynamic verdict must agree:
   - race-free kernels sanitize clean under every scheme;
   - racy kernels carry a static loop-carried memory dependence, are
     denied DOANY, and their honest (ordered) executions sanitize clean. *)
let prop_kgen_differential =
  QCheck.Test.make ~name:"kgen: sanitizer agrees with static classification" ~count:24
    (QCheck.make QCheck.Gen.(int_range 0 10_000))
    (fun seed ->
      let g = Kgen.generate ~seed in
      let pdg = Pdg.build g.Kgen.g_loop in
      let carried_mem =
        List.exists
          (fun (d : Dep.t) -> d.Dep.kind = Dep.Mem_data && d.Dep.carried)
          pdg.Pdg.deps
      in
      let r = Sanitize.run ~dop:3 g.Kgen.g_loop in
      let clean = Diag.count_errors r.Sanitize.diags = 0 && total_races r = 0 in
      if g.Kgen.g_racy then
        (* Static analysis must see the carried conflict, DOANY must be
           rejected, and the remaining (ordered) schemes must not race. *)
        carried_mem
        && not (List.mem "DOANY" r.Sanitize.schemes)
        && clean
      else clean)

(* Injecting the unsound analysis into a generated racy kernel yields a
   verifier-passed DOANY whose race the sanitizer pins with S701. *)
let prop_kgen_injection =
  QCheck.Test.make ~name:"kgen: injected racy kernels trigger S701" ~count:12
    (QCheck.make QCheck.Gen.(int_range 0 10_000))
    (fun seed ->
      let g = Kgen.generate ~seed in
      if not g.Kgen.g_racy then true
      else
        let r = Sanitize.run ~inject:true ~dop:3 g.Kgen.g_loop in
        List.mem "DOANY" r.Sanitize.schemes && has_code "S701" r.Sanitize.diags)

(* ------------------------- report plumbing ---------------------------- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_report_json () =
  let r = Sanitize.run (Kernels.blackscholes ~n:64 ()) in
  let j = Sanitize.to_json r in
  check_bool "json has loop name" true (contains j "blackscholes");
  check_bool "json has runs" true (contains j "\"runs\"")

let suite =
  [
    Alcotest.test_case "hb: unordered writes race" `Quick test_hb_unordered;
    Alcotest.test_case "hb: spawn edge orders" `Quick test_hb_spawn_edge;
    Alcotest.test_case "hb: message edge orders" `Quick test_hb_message_edge;
    Alcotest.test_case "hb: cumulative channel clock" `Quick test_hb_cumulative_channel;
    Alcotest.test_case "hb: lock and join edges" `Quick test_hb_lock_and_join;
    Alcotest.test_case "hb: write resets read set" `Quick test_hb_write_reset;
    Alcotest.test_case "builder: every node has a loc" `Quick test_builder_locs;
    Alcotest.test_case "clean kernels sanitize clean" `Slow test_clean_kernels;
    Alcotest.test_case "sanitizer counters registered" `Quick test_sanitizer_counters;
    Alcotest.test_case "inject: S701/S702 on sim" `Quick test_inject_histogram_sim;
    Alcotest.test_case "inject: plan passes verifier" `Quick test_inject_passes_verifier;
    Alcotest.test_case "inject: S701 on native" `Slow test_inject_histogram_native;
    Alcotest.test_case "G711 precision gap" `Quick test_g711_gap;
    QCheck_alcotest.to_alcotest prop_kgen_differential;
    QCheck_alcotest.to_alcotest prop_kgen_injection;
    Alcotest.test_case "report json" `Quick test_report_json;
  ]
