(* Tests for the controller flight recorder (lib/obs/flight.ml), the
   reconfiguration overhead ledger (lib/obs/ledger.ml), and offline decision
   replay: JSONL round-trips, controller runs whose logs replay to the same
   moves on both backends, mechanism (Morta) decisions doing the same,
   daemon grants, and the ledger's phase decomposition summing to the
   measured reconfiguration time on the simulator. *)

open Parcae_ir
open Parcae_sim
module Engine = Parcae_platform.Engine
module Chan = Parcae_platform.Chan
open Parcae_nona
open Parcae_core
module R = Parcae_runtime
module Mech = Parcae_mechanisms
module Obs = Parcae_obs
module Flight = Obs.Flight
module Ledger = Obs.Ledger
module Config = Parcae_core.Config

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let machine = Machine.xeon_x7460

let decisions_of entries =
  List.filter_map (function Flight.Decision d -> Some d | _ -> None) entries

let overheads_of entries =
  List.filter_map (function Flight.Overhead o -> Some o | _ -> None) entries

(* Every decision must explain itself; the acceptance bar for the
   recorder. *)
let check_reasons entries =
  List.iter
    (fun (d : Flight.decision) ->
      check_bool
        (Printf.sprintf "epoch %d (%s/%s) has a reason" d.Flight.epoch d.Flight.actor
           d.Flight.region)
        true
        (d.Flight.reason <> ""))
    (decisions_of entries)

let check_replay label entries =
  let rr = Flight.replay entries in
  (match rr.Flight.mismatches with
  | [] -> ()
  | (epoch, what) :: _ ->
      Alcotest.failf "%s: %d replay mismatch(es), first at epoch %d: %s" label
        (List.length rr.Flight.mismatches)
        epoch what);
  check_bool (label ^ ": replay reproduces the recorded moves") true
    (rr.Flight.moves = Flight.recorded_moves entries);
  rr

(* ---------------------------- round-trip ---------------------------- *)

let test_jsonl_roundtrip () =
  let rc = Flight.create () in
  Flight.with_recorder rc (fun () ->
      Flight.decision ~t:1_000 ~actor:"controller" ~region:"r" ~state:Obs.Event.Optimize
        ~reason:"gradient_positive"
        ~tasks:
          [
            { Flight.task = "seq"; iters = 10; ips = 0.1; exec_ns = 1234.5 };
            { Flight.task = "par"; iters = 400; ips = 12345.678; exec_ns = 0.125 };
          ]
        ~probes:[ (4, 100.0); (5, 110.5); (3, 90.25) ]
        ~gradient:10.5
        ~inputs:[ ("task", 1.0); ("cap", 24.0) ]
        ~candidate:4 ~chosen:5 ~threads:7 ~budget:24 ();
      Flight.decision ~t:2_000 ~actor:"daemon" ~region:"platform" ~reason:"equal_share"
        ~slack:[ ("p1", 12); ("p2", 12) ]
        ~candidate:24 ~chosen:24 ~threads:24 ~budget:24 ();
      (* Minimal decision: every optional field absent. *)
      Flight.decision ~t:3_000 ~actor:"morta" ~region:"r" ~reason:"queue_threshold"
        ~candidate:3 ~chosen:3 ~threads:3 ~budget:8 ();
      Flight.overhead ~t:4_000 ~region:"r" ~phase:"signal" ~ns:62_245);
  let entries = Flight.entries rc in
  check_int "four entries" 4 (List.length entries);
  (* Epochs are stamped monotonically by the recorder. *)
  check_bool "monotonic epochs" true
    (List.map (fun d -> d.Flight.epoch) (decisions_of entries) = [ 0; 1; 2 ]);
  let back = Flight.parse_jsonl (Flight.to_jsonl entries) in
  check_bool "JSONL round-trips structurally" true (back = entries);
  (* An awkward float survives the text form exactly. *)
  let rc2 = Flight.create () in
  Flight.with_recorder rc2 (fun () ->
      Flight.decision ~t:1 ~actor:"controller" ~region:"r" ~reason:"baseline"
        ~probes:[ (1, 0.1) ] ~candidate:1 ~chosen:1 ~threads:1 ~budget:1 ());
  let e2 = Flight.entries rc2 in
  check_bool "0.1 round-trips exactly" true (Flight.parse_jsonl (Flight.to_jsonl e2) = e2)

let test_recorder_discipline () =
  check_bool "disabled by default" false (Flight.enabled ());
  (* Recording into the null recorder is a no-op, not an error. *)
  Flight.decision ~t:0 ~actor:"controller" ~region:"r" ~reason:"baseline" ~candidate:1
    ~chosen:1 ~threads:1 ~budget:1 ();
  let rc = Flight.create () in
  Flight.with_recorder rc (fun () ->
      check_bool "enabled inside with_recorder" true (Flight.enabled ());
      Flight.overhead ~t:1 ~region:"r" ~phase:"flush" ~ns:10);
  check_bool "with_recorder restores" false (Flight.enabled ());
  check_int "entry landed" 1 (Flight.count rc)

(* ------------------------ pure ascent rule -------------------------- *)

let test_ascent_climb () =
  (* A unimodal fitness peaked at 6: climbing from 4 must reach it. *)
  let f d = Some (100.0 -. float_of_int ((d - 6) * (d - 6))) in
  (match Flight.Ascent.climb ~measure:f ~d0:4 ~cap:24 with
  | Some oc ->
      check_int "finds the peak" 6 oc.Flight.Ascent.chosen;
      check_string "reports direction" "gradient_positive" oc.Flight.Ascent.reason;
      check_bool "probe table covers the walk" true
        (List.mem_assoc 4 oc.Flight.Ascent.probes && List.mem_assoc 6 oc.Flight.Ascent.probes)
  | None -> Alcotest.fail "climb bailed");
  (* Decreasing fitness: walks down, prefers fewer threads at a tie. *)
  (match Flight.Ascent.climb ~measure:(fun d -> Some (-.float_of_int d)) ~d0:4 ~cap:24 with
  | Some oc ->
      check_int "walks to the floor" 1 oc.Flight.Ascent.chosen;
      check_string "downward reason" "gradient_negative" oc.Flight.Ascent.reason
  | None -> Alcotest.fail "climb bailed");
  (* Constant fitness: a tie goes up (the controller's original rule — at
     equal throughput it prefers probing the larger DoP once), then the
     strict-improvement test stops the walk immediately. *)
  (match Flight.Ascent.climb ~measure:(fun _ -> Some 5.0) ~d0:4 ~cap:24 with
  | Some oc ->
      check_int "tie steps up once" 5 oc.Flight.Ascent.chosen;
      check_string "tie reason" "gradient_positive" oc.Flight.Ascent.reason
  | None -> Alcotest.fail "climb bailed");
  (* Fitness peaked at the candidate itself: both probes lose, stays put. *)
  (match
     Flight.Ascent.climb ~measure:(fun d -> Some (-.abs_float (float_of_int (d - 4)))) ~d0:4
       ~cap:24
   with
  | Some oc ->
      check_int "flat stays" 4 oc.Flight.Ascent.chosen;
      check_string "flat reason" "gradient_flat" oc.Flight.Ascent.reason
  | None -> Alcotest.fail "climb bailed");
  (* The region finishing mid-search aborts the climb. *)
  check_bool "None measure aborts" true
    (Flight.Ascent.climb ~measure:(fun _ -> None) ~d0:4 ~cap:24 = None)

(* --------------------- controller record/replay --------------------- *)

let controller_params =
  {
    R.Controller.default_params with
    R.Controller.nseq = 8;
    poll_ns = 20_000;
    monitor_ns = 10_000_000;
    change_frac = 0.3;
  }

(* Compile [loop] and run it to completion under the closed-loop controller
   on [eng], with a flight recorder installed; returns the log. *)
let controller_log eng loop =
  let rc = Flight.create () in
  Flight.with_recorder rc (fun () ->
      let c = Compiler.compile loop in
      let h = Compiler.launch ~budget:8 eng c in
      let ctl = R.Controller.create ~params:controller_params h.Compiler.region in
      ignore (R.Controller.spawn eng ctl);
      ignore (Engine.run ~until:60_000_000_000 eng);
      check_bool "region completed" true (R.Region.is_done h.Compiler.region));
  Flight.entries rc

let check_controller_log label entries =
  let ds = decisions_of entries in
  check_bool (label ^ ": recorded decisions") true (ds <> []);
  check_reasons entries;
  check_bool (label ^ ": saw a gradient decision") true
    (List.exists
       (fun d ->
         d.Flight.actor = "controller"
         && (d.Flight.reason = "gradient_positive"
            || d.Flight.reason = "gradient_negative"
            || d.Flight.reason = "gradient_flat"))
       ds);
  check_bool (label ^ ": controller decisions carry Decima evidence") true
    (List.for_all
       (fun d -> d.Flight.actor <> "controller" || d.Flight.tasks <> [])
       ds);
  let rr = check_replay label entries in
  check_int (label ^ ": replay examined every decision") (List.length ds) rr.Flight.decisions;
  check_bool (label ^ ": some configuration moves were applied") true
    (List.exists (fun (_, ms) -> ms <> []) rr.Flight.moves)

let test_controller_replay_sim () =
  let entries = controller_log (Engine.create machine) (Kernels.blackscholes ~n:8000 ()) in
  check_controller_log "sim" entries;
  (* A full run on the sim also exercises the ledger fan-out into the
     recorder: reconfigurations leave overhead entries behind. *)
  check_bool "overhead entries recorded" true (overheads_of entries <> [])

let test_controller_replay_native () =
  let eng = Engine.create_native ~pool:2 () in
  let entries = controller_log eng (Kernels.blackscholes ~n:8000 ()) in
  Engine.shutdown eng;
  check_controller_log "native" entries;
  (* The log is backend-agnostic: it survives the JSONL round-trip and the
     parsed form replays identically. *)
  ignore (check_replay "native/jsonl" (Flight.parse_jsonl (Flight.to_jsonl entries)))

(* --------------------- mechanism record/replay ---------------------- *)

(* A single-parallel-task region that runs [iters] countdown iterations of
   [work] ns compute + [work] ns sleep each, and whose load signal is purely
   time-driven (low before [flip_ns], high after), so the same driver works
   unchanged on both backends — no shared mutable test state crosses domains
   on native.  The sleep half matters on native: workers that only spin keep
   their home domain and the engine's runtime lock so busy that the Morta
   thread starves until the region exits; sleeping workers release both. *)
let mech_log eng ~iters ~work ~dop ~mechanism =
  let rc = Flight.create () in
  Flight.with_recorder rc (fun () ->
      let left = Atomic.make iters in
      let task =
        Task.parallel ~name:"spin" (fun ctx ->
            match ctx.Task.get_status () with
            | Task_status.Paused -> Task_status.Paused
            | _ ->
                if Atomic.fetch_and_add left (-1) <= 0 then Task_status.Complete
                else begin
                  Engine.compute work;
                  Engine.sleep work;
                  Task_status.Iterating
                end)
      in
      let pd = Task.descriptor ~name:"mech" [ task ] in
      let region =
        R.Executor.launch ~budget:8 ~name:"mech" eng [ pd ]
          (Config.make [ Config.task dop ])
      in
      ignore (R.Morta.spawn ~period_ns:200_000 ~mechanism eng region);
      ignore (Engine.run ~until:60_000_000_000 eng);
      check_bool "mech region completed" true (R.Region.is_done region));
  Flight.entries rc

let flip_ns = 2_000_000

let low_high () = if Engine.now () < flip_ns then 1.0 else 10.0
let high_low () = if Engine.now () < flip_ns then 10.0 else 1.0

(* WQT-H starts Heavy; a sustained low load toggles it Light, and the later
   high load toggles it back — two decisions with distinct reasons. *)
let wqt_h_mech () =
  Mech.Wqt_h.make ~load:low_high ~threshold:5.0 ~non:2 ~noff:2
    ~light:(Config.make [ Config.task 2 ])
    ~heavy:(Config.make [ Config.task 3 ])
    ()

(* SEDA grows the loaded stage by one thread per tick once the queue signal
   crosses the threshold. *)
let seda_region_mech () =
  Mech.Seda.make ~threshold:5.0 ~max_per_stage:3 ()

let check_mech_log label ~expect entries =
  let morta =
    List.filter (fun d -> d.Flight.actor = "morta") (decisions_of entries)
  in
  check_bool (label ^ ": morta recorded decisions") true (morta <> []);
  check_reasons entries;
  List.iter
    (fun reason ->
      check_bool
        (Printf.sprintf "%s: saw reason %s" label reason)
        true
        (List.exists (fun d -> d.Flight.reason = reason) morta))
    expect;
  ignore (check_replay label entries)

let test_mechanism_replay_sim () =
  let entries =
    mech_log (Engine.create machine) ~iters:20_000 ~work:1_000 ~dop:3
      ~mechanism:(wqt_h_mech ())
  in
  check_mech_log "sim/wqt-h" ~expect:[ "wq_toggle_light"; "wq_toggle_heavy" ] entries;
  (* SEDA needs the region's load signal; reuse the time-driven one. *)
  let eng = Engine.create machine in
  let rc = Flight.create () in
  Flight.with_recorder rc (fun () ->
      let left = Atomic.make 20_000 in
      let task =
        Task.parallel ~load:high_low ~name:"spin" (fun ctx ->
            match ctx.Task.get_status () with
            | Task_status.Paused -> Task_status.Paused
            | _ ->
                if Atomic.fetch_and_add left (-1) <= 0 then Task_status.Complete
                else begin
                  Engine.compute 1_000;
                  Task_status.Iterating
                end)
      in
      let pd = Task.descriptor ~name:"seda" [ task ] in
      let region =
        R.Executor.launch ~budget:8 ~name:"seda" eng [ pd ]
          (Config.make [ Config.task 1 ])
      in
      ignore (R.Morta.spawn ~period_ns:200_000 ~mechanism:(seda_region_mech ()) eng region);
      ignore (Engine.run ~until:60_000_000_000 eng));
  check_mech_log "sim/seda" ~expect:[ "queue_threshold" ] (Flight.entries rc)

let test_mechanism_replay_native () =
  let eng = Engine.create_native ~pool:2 () in
  let entries = mech_log eng ~iters:2_000 ~work:5_000 ~dop:3 ~mechanism:(wqt_h_mech ()) in
  Engine.shutdown eng;
  (* Real time makes the second toggle racy against region completion; the
     first (light) toggle is deterministic — sustained low load from t=0. *)
  check_mech_log "native/wqt-h" ~expect:[ "wq_toggle_light" ] entries

(* -------------------------- daemon grants --------------------------- *)

let test_daemon_grants_recorded () =
  let rc = Flight.create () in
  Flight.with_recorder rc (fun () ->
      let eng = Engine.create machine in
      let daemon = R.Daemon.create eng ~total_threads:24 in
      let launch kernel name =
        let c = Compiler.compile kernel in
        let h = Compiler.launch ~budget:24 ~name eng c in
        let ctl = R.Controller.create ~params:controller_params h.Compiler.region in
        R.Daemon.register daemon h.Compiler.region ctl;
        ignore (R.Controller.spawn eng ctl);
        h
      in
      let h1 = launch (Kernels.blackscholes ~n:6000 ()) "p1" in
      let h2 = launch (Kernels.kmeans ~n:2000 ()) "p2" in
      ignore (R.Daemon.spawn eng daemon);
      ignore (Engine.run ~until:120_000_000_000 eng);
      check_bool "both done" true
        (R.Region.is_done h1.Compiler.region && R.Region.is_done h2.Compiler.region));
  let entries = Flight.entries rc in
  let daemon_ds =
    List.filter (fun d -> d.Flight.actor = "daemon") (decisions_of entries)
  in
  check_bool "daemon recorded grants" true (daemon_ds <> []);
  check_bool "equal_share grant present" true
    (List.exists (fun d -> d.Flight.reason = "equal_share") daemon_ds);
  (* Grants name every registered program with a positive share within the
     platform total. *)
  List.iter
    (fun (d : Flight.decision) ->
      check_bool "grant carries shares" true (d.Flight.slack <> []);
      check_bool "shares positive" true (List.for_all (fun (_, s) -> s >= 1) d.Flight.slack);
      check_bool "shares within total" true
        (List.fold_left (fun a (_, s) -> a + s) 0 d.Flight.slack <= d.Flight.budget))
    daemon_ds;
  check_reasons entries;
  ignore (check_replay "daemon" entries)

(* ------------------------ overhead ledger --------------------------- *)

(* The pipeline of test_native, with deliberately staggered stage costs so
   the workers park at different times (a nonzero barrier phase). *)
let ledger_pipeline eng =
  let q1 = Chan.create ~capacity:8 eng "q1" and q2 = Chan.create ~capacity:8 eng "q2" in
  let items = 60 in
  let produced = ref 0 and consumed = ref 0 in
  let produce =
    Pipeline.source ~name:"produce"
      ~forward:(Pipeline.forward_to q1)
      (fun _ctx ->
        if !produced >= items then Task_status.Complete
        else begin
          Engine.compute 13_000;
          Pipeline.send q1 !produced;
          incr produced;
          Task_status.Iterating
        end)
  in
  let transform =
    Pipeline.stage ~name:"transform" ~input:q1 ~load:(Pipeline.load q1)
      ~forward:(Pipeline.forward_to q2)
      (fun _ctx v ->
        Engine.compute 50_001;
        Pipeline.send q2 v;
        Task_status.Iterating)
  in
  let consume =
    Pipeline.stage ~ttype:Task.Seq ~name:"consume" ~input:q2
      ~forward:(fun _ -> ())
      (fun _ctx _ ->
        incr consumed;
        Task_status.Iterating)
  in
  let pd =
    Task.descriptor ~name:"ledger"
      [ produce.Pipeline.task; transform.Pipeline.task; consume.Pipeline.task ]
  in
  let on_reset =
    Pipeline.make_reset ~stages:[ produce; transform; consume ] ~channels:[ q1; q2 ]
  in
  let config dop = Config.make [ Config.seq_task; Config.task dop; Config.seq_task ] in
  let region =
    R.Executor.launch ~budget:8 ~name:"ledger" eng [ pd ] ~on_reset (config 2)
  in
  ignore
    (Engine.spawn eng ~name:"watcher" (fun () ->
         Engine.sleep 300_000;
         if not (R.Region.is_done region) then R.Executor.reconfigure region (config 3)));
  ignore (Engine.run ~until:60_000_000_000 eng);
  !consumed

let test_ledger_phase_decomposition () =
  let led = Ledger.create () in
  let reg = Obs.Metrics.create () in
  let rc = Flight.create () in
  let consumed =
    Ledger.with_ledger led (fun () ->
        Obs.Metrics.with_registry reg (fun () ->
            Flight.with_recorder rc (fun () -> ledger_pipeline (Engine.create machine))))
  in
  check_int "pipeline consumed every item" 60 consumed;
  let p phase = Ledger.phase_ns led ~region:"ledger" ~phase in
  let total = p "total" in
  check_bool "measured a reconfiguration" true (total > 0);
  List.iter
    (fun phase ->
      check_bool (Printf.sprintf "phase %s nonzero (%d ns)" phase (p phase)) true
        (p phase > 0))
    Ledger.phases;
  (* The disjoint phases must account for the measured wall time: within 5%
     (on the cooperative simulator they sum exactly). *)
  let summed = List.fold_left (fun a ph -> a + p ph) 0 Ledger.phases in
  check_bool
    (Printf.sprintf "phases sum to the total (%d vs %d)" summed total)
    true
    (abs (summed - total) <= total / 20);
  (* The same measurements fanned out to the metrics registry... *)
  let fam =
    List.find_opt
      (fun f -> f.Obs.Metrics.name = "parcae_reconfig_phase_ns_total")
      (Obs.Metrics.snapshot reg)
  in
  (match fam with
  | Some f ->
      check_bool "metrics carry per-phase samples" true
        (List.length f.Obs.Metrics.samples >= List.length Ledger.phases)
  | None -> Alcotest.fail "parcae_reconfig_phase_ns_total missing from the registry");
  (* ...and to the flight recorder. *)
  let os = overheads_of (Flight.entries rc) in
  check_bool "flight has overhead entries" true (os <> []);
  List.iter
    (fun ph ->
      check_bool (ph ^ " phase in flight log") true
        (List.exists (fun o -> o.Flight.o_phase = ph) os))
    ("total" :: Ledger.phases);
  (* The ledger snapshot agrees with the per-phase reads. *)
  List.iter
    (fun (region, phase, ns) ->
      if region = "ledger" then
        check_int ("snapshot agrees on " ^ phase) (Ledger.phase_ns led ~region ~phase) ns)
    (Ledger.snapshot led)

let suite =
  [
    Alcotest.test_case "flight: JSONL round-trip" `Quick test_jsonl_roundtrip;
    Alcotest.test_case "flight: null-recorder discipline" `Quick test_recorder_discipline;
    Alcotest.test_case "flight: pure ascent rule" `Quick test_ascent_climb;
    Alcotest.test_case "flight: controller replay on sim" `Quick test_controller_replay_sim;
    Alcotest.test_case "flight: controller replay on native" `Quick
      test_controller_replay_native;
    Alcotest.test_case "flight: mechanism replay on sim" `Quick test_mechanism_replay_sim;
    Alcotest.test_case "flight: mechanism replay on native" `Quick
      test_mechanism_replay_native;
    Alcotest.test_case "flight: daemon grants recorded and replayed" `Quick
      test_daemon_grants_recorded;
    Alcotest.test_case "ledger: phase decomposition sums to total" `Quick
      test_ledger_phase_decomposition;
  ]
