(* Tests for the DOACROSS parallelizer: applicability, the pre/chain body
   split, semantics preservation (including pauses and scheme switches
   through the recurrence ring), and the expected performance behaviour. *)

open Parcae_ir
open Parcae_pdg
open Parcae_sim

(* Engine/value types come from the platform dispatch layer (the runtime's
   own types); [Machine]/[Power]/etc. remain from [Parcae_sim] above. *)
module Engine = Parcae_platform.Engine
module Chan = Parcae_platform.Chan
module Lock = Parcae_platform.Lock
module Barrier = Parcae_platform.Barrier
open Parcae_nona
module R = Parcae_runtime

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let machine = Machine.xeon_x7460

let test_applicability () =
  let check name loop expected =
    let pdg = Pdg.build loop in
    check_bool (name ^ Printf.sprintf ": doacross %b" expected) expected (Doacross.applicable pdg)
  in
  check "crc32" (Kernels.crc32 ~n:20 ()) true;
  check "recurrence" (Kernels.recurrence ~n:20 ()) true;
  check "statecarry" (Kernels.statecarry ~n:20 ()) true;
  (* carried memory dependence *)
  check "histogram" (Kernels.histogram ~n:20 ()) false;
  (* data-dependent exit *)
  check "stringsearch" (Kernels.stringsearch ~n:20 ()) false;
  (* no hard recurrence at all *)
  check "blackscholes" (Kernels.blackscholes ~n:20 ()) false

let test_compiler_emits_doacross_as_fallback () =
  let c = Compiler.compile (Kernels.crc32 ~n:20 ()) in
  Alcotest.(check (list string))
    "crc32 schemes" [ "SEQ"; "DOACROSS"; "PS-DSWP" ] (Compiler.scheme_names c);
  (* DOANY dominates DOACROSS, so a DOANY-able loop does not get it. *)
  let c = Compiler.compile (Kernels.kmeans ~n:20 ()) in
  check_bool "kmeans has no doacross" true (c.Compiler.doacross = None)

let test_plan_split () =
  let pdg = Pdg.build (Kernels.crc32 ~n:20 ()) in
  let plan = Doacross.make_plan pdg in
  check_int "one hard recurrence" 1 (List.length plan.Doacross.hard_phis);
  (* The expensive transform (Work) must be in the overlapping pre part;
     the crc multiply-add chain must be in the chain part. *)
  let nodes = Loop.nodes pdg.Pdg.loop in
  let is_work id = match nodes.(id) with Loop.Instr_node (Instr.Work _) -> true | _ -> false in
  check_bool "work overlaps" true (List.exists is_work plan.Doacross.pre);
  check_bool "chain nonempty" true (plan.Doacross.chain <> []);
  check_bool "pre and chain disjoint" true
    (List.for_all (fun id -> not (List.mem id plan.Doacross.chain)) plan.Doacross.pre)

let run_doacross ?(driver = fun _ _ -> ()) kernel dop =
  let loop = kernel () in
  let c = Compiler.compile loop in
  let eng = Engine.create machine in
  let h = Compiler.launch ~budget:24 eng c in
  let _ =
    Engine.spawn eng ~name:"driver" (fun () ->
        R.Executor.reconfigure h.Compiler.region (Compiler.config_for h ~dop "DOACROSS");
        driver eng h;
        R.Executor.await h.Compiler.region)
  in
  ignore (Engine.run eng);
  check_bool "done" true (R.Region.is_done h.Compiler.region);
  check_bool "semantics preserved" true (Compiler.preserves_semantics h);
  (h, Engine.time eng)

let test_semantics_various_dops () =
  List.iter
    (fun dop -> ignore (run_doacross (fun () -> Kernels.crc32 ~n:300 ()) dop))
    [ 1; 2; 3; 8; 16 ];
  ignore (run_doacross (fun () -> Kernels.recurrence ~n:500 ()) 4);
  ignore (run_doacross (fun () -> Kernels.statecarry ~n:400 ()) 6)

let test_speedup_on_crc32 () =
  (* The 30 us transform overlaps; the short multiply-add chain is the
     serial bottleneck, so DOACROSS must scale well up to many lanes. *)
  let _, seq = run_doacross (fun () -> Kernels.crc32 ~n:400 ()) 1 in
  let _, par = run_doacross (fun () -> Kernels.crc32 ~n:400 ()) 12 in
  let speedup = float_of_int seq /. float_of_int par in
  check_bool (Printf.sprintf "speedup %.2f > 7" speedup) true (speedup > 7.0)

let test_no_speedup_on_recurrence () =
  (* Everything is in the chain: DOACROSS degenerates to serialized
     execution plus ring traffic — no speedup (the controller would reject
     it at run time). *)
  let _, seq = run_doacross (fun () -> Kernels.recurrence ~n:2000 ()) 1 in
  let _, par = run_doacross (fun () -> Kernels.recurrence ~n:2000 ()) 8 in
  let speedup = float_of_int seq /. float_of_int par in
  check_bool (Printf.sprintf "speedup %.2f <= 1.1" speedup) true (speedup <= 1.1)

let test_pause_resume_through_ring () =
  let driver _eng (h : Compiler.handle) =
    for i = 1 to 4 do
      Engine.sleep 500_000;
      if not (R.Region.is_done h.Compiler.region) then
        R.Executor.reconfigure h.Compiler.region
          (Compiler.config_for h ~dop:(1 + (i mod 3) * 5) "DOACROSS")
    done
  in
  ignore (run_doacross ~driver (fun () -> Kernels.crc32 ~n:600 ()) 4)

let test_scheme_switches_with_doacross () =
  let loop = Kernels.crc32 ~n:800 () in
  let c = Compiler.compile loop in
  let eng = Engine.create machine in
  let h = Compiler.launch ~budget:24 eng c in
  let _ =
    Engine.spawn eng ~name:"driver" (fun () ->
        let region = h.Compiler.region in
        R.Executor.reconfigure region (Compiler.config_for h ~dop:6 "DOACROSS");
        Engine.sleep 2_000_000;
        R.Executor.reconfigure region (Compiler.config_for h ~dop:8 "PS-DSWP");
        Engine.sleep 2_000_000;
        R.Executor.reconfigure region (Compiler.config_for h "SEQ");
        Engine.sleep 1_000_000;
        R.Executor.reconfigure region (Compiler.config_for h ~dop:10 "DOACROSS");
        R.Executor.await region)
  in
  ignore (Engine.run eng);
  check_bool "done" true (R.Region.is_done h.Compiler.region);
  check_int "every iteration exactly once" 800 h.Compiler.rs.Flex.next_iter;
  check_bool "semantics across scheme switches" true (Compiler.preserves_semantics h)

let test_controller_uses_doacross () =
  (* crc32's schemes are SEQ / DOACROSS / PS-DSWP; the controller must pick
     a parallel one and still finish correctly. *)
  let c = Compiler.compile (Kernels.crc32 ~n:6000 ()) in
  let eng = Engine.create machine in
  let h = Compiler.launch ~budget:24 eng c in
  let params =
    { R.Controller.default_params with R.Controller.nseq = 8; npar_factor = 8; monitor_ns = 10_000_000 }
  in
  let ctl = R.Controller.create ~params h.Compiler.region in
  ignore (R.Controller.spawn eng ctl);
  ignore (Engine.run ~until:120_000_000_000 eng);
  check_bool "done" true (R.Region.is_done h.Compiler.region);
  check_bool "semantics" true (Compiler.preserves_semantics h);
  check_bool "picked a parallel scheme" true
    (R.Region.scheme_name h.Compiler.region <> "SEQ")

let suite =
  [
    Alcotest.test_case "doacross: applicability" `Quick test_applicability;
    Alcotest.test_case "doacross: fallback emission" `Quick test_compiler_emits_doacross_as_fallback;
    Alcotest.test_case "doacross: pre/chain split" `Quick test_plan_split;
    Alcotest.test_case "doacross: semantics at many dops" `Quick test_semantics_various_dops;
    Alcotest.test_case "doacross: crc32 speedup" `Quick test_speedup_on_crc32;
    Alcotest.test_case "doacross: recurrence no speedup" `Quick test_no_speedup_on_recurrence;
    Alcotest.test_case "doacross: pause through ring" `Quick test_pause_resume_through_ring;
    Alcotest.test_case "doacross: scheme switches" `Quick test_scheme_switches_with_doacross;
    Alcotest.test_case "doacross: controller integration" `Quick test_controller_uses_doacross;
  ]
