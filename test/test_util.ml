(* Unit and property tests for Parcae_util: RNG, statistics, priority queue,
   time series, table rendering. *)

open Parcae_util

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)

(* ---------------------------- Rng ---------------------------- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_float "same stream" (Rng.float a) (Rng.float b)
  done

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xa = Rng.float a and xb = Rng.float b in
  Alcotest.(check bool) "split streams differ" true (xa <> xb)

let test_rng_float_range () =
  let r = Rng.create 1 in
  for _ = 1 to 1000 do
    let x = Rng.float r in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_rng_int_range () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Rng.int r 17 in
    Alcotest.(check bool) "in [0,17)" true (x >= 0 && x < 17)
  done

let test_rng_exponential_mean () =
  let r = Rng.create 11 in
  let n = 20_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Rng.exponential r ~rate:2.0
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.3f close to 0.5" mean)
    true
    (abs_float (mean -. 0.5) < 0.02)

let test_rng_gaussian_moments () =
  let r = Rng.create 13 in
  let n = 20_000 in
  let xs = Array.init n (fun _ -> Rng.gaussian r ~mu:5.0 ~sigma:2.0) in
  Alcotest.(check bool) "mean ~5" true (abs_float (Stats.mean xs -. 5.0) < 0.1);
  Alcotest.(check bool) "stddev ~2" true (abs_float (Stats.stddev xs -. 2.0) < 0.1)

(* --------------------------- Stats --------------------------- *)

let test_stats_basic () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "mean" 2.5 (Stats.mean xs);
  check_float "median" 2.5 (Stats.median xs);
  check_float "p0" 1.0 (Stats.percentile 0.0 xs);
  check_float "p100" 4.0 (Stats.percentile 100.0 xs);
  let lo, hi = Stats.min_max xs in
  check_float "min" 1.0 lo;
  check_float "max" 4.0 hi

let test_stats_variance () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  (* Sample variance of this classic example is 32/7. *)
  check_float "variance" (32.0 /. 7.0) (Stats.variance xs)

let test_stats_geomean () =
  check_float "geomean" 2.0 (Stats.geomean [| 1.0; 2.0; 4.0 |])

let test_stats_empty_contract () =
  (* Aggregates degrade to 0.0 on empty input; order statistics raise. *)
  check_float "empty mean is 0" 0.0 (Stats.mean [||]);
  check_float "empty variance is 0" 0.0 (Stats.variance [||]);
  check_float "empty stddev is 0" 0.0 (Stats.stddev [||]);
  check_float "empty geomean is 0" 0.0 (Stats.geomean [||]);
  Alcotest.check_raises "empty percentile raises"
    (Invalid_argument "Stats.percentile: empty sample") (fun () ->
      ignore (Stats.percentile 50.0 [||]));
  Alcotest.check_raises "empty median raises"
    (Invalid_argument "Stats.percentile: empty sample") (fun () -> ignore (Stats.median [||]));
  Alcotest.check_raises "empty min_max raises"
    (Invalid_argument "Stats.min_max: empty sample") (fun () -> ignore (Stats.min_max [||]));
  Alcotest.check_raises "p out of range raises"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Stats.percentile 101.0 [| 1.0 |]))

let test_stats_single_element () =
  (* One sample is every percentile of itself. *)
  List.iter
    (fun p -> check_float (Printf.sprintf "p%.0f of singleton" p) 7.5
        (Stats.percentile p [| 7.5 |]))
    [ 0.0; 25.0; 50.0; 95.0; 100.0 ];
  check_float "singleton median" 7.5 (Stats.median [| 7.5 |]);
  let lo, hi = Stats.min_max [| 7.5 |] in
  check_float "singleton min" 7.5 lo;
  check_float "singleton max" 7.5 hi;
  check_float "singleton variance" 0.0 (Stats.variance [| 7.5 |])

let test_stats_nan_ordering () =
  (* Float.compare gives NaN a total order (before every number), so a
     NaN-polluted sample still sorts deterministically: the answer depends
     only on the multiset of values, not on their input order. *)
  let a = [| nan; 3.0; 1.0; 2.0 |] and b = [| 2.0; 1.0; nan; 3.0 |] in
  let pa = Stats.percentile 75.0 a and pb = Stats.percentile 75.0 b in
  check_float "input order irrelevant with NaN" pa pb;
  (* NaN sorts first, so p100 is still the largest real number. *)
  check_float "p100 ignores NaN position" 3.0 (Stats.percentile 100.0 a);
  Alcotest.(check bool) "p0 is the NaN" true (Float.is_nan (Stats.percentile 0.0 a))

let test_reservoir_exact_until_capacity () =
  let r = Stats.Reservoir.create ~capacity:8 () in
  check_float "empty reservoir mean is 0" 0.0 (Stats.Reservoir.mean r);
  Alcotest.check_raises "empty reservoir min_max raises"
    (Invalid_argument "Stats.Reservoir.min_max: empty sample") (fun () ->
      ignore (Stats.Reservoir.min_max r));
  List.iter (Stats.Reservoir.observe r) [ 4.0; 1.0; 3.0; 2.0 ];
  (* Below capacity the reservoir is the exact sample. *)
  check_int "count" 4 (Stats.Reservoir.count r);
  check_int "all retained" 4 (Stats.Reservoir.sample_count r);
  check_float "exact sum" 10.0 (Stats.Reservoir.sum r);
  check_float "exact mean" 2.5 (Stats.Reservoir.mean r);
  check_float "exact median" 2.5 (Stats.Reservoir.percentile 50.0 r);
  let lo, hi = Stats.Reservoir.min_max r in
  check_float "exact min" 1.0 lo;
  check_float "exact max" 4.0 hi

let test_reservoir_bounded_beyond_capacity () =
  let cap = 64 in
  let r = Stats.Reservoir.create ~capacity:cap ~seed:3 () in
  let n = 10_000 in
  for i = 1 to n do
    Stats.Reservoir.observe r (float_of_int i)
  done;
  check_int "sees every observation" n (Stats.Reservoir.count r);
  check_int "memory stays bounded" cap (Stats.Reservoir.sample_count r);
  (* Aggregates stay exact even after subsampling kicks in... *)
  check_float "sum exact" (float_of_int (n * (n + 1) / 2)) (Stats.Reservoir.sum r);
  check_float "mean exact" (float_of_int (n + 1) /. 2.0) (Stats.Reservoir.mean r);
  let lo, hi = Stats.Reservoir.min_max r in
  check_float "min exact" 1.0 lo;
  check_float "max exact" (float_of_int n) hi;
  (* ...while percentiles become estimates over a uniform subsample. *)
  let p50 = Stats.Reservoir.percentile 50.0 r in
  Alcotest.(check bool)
    (Printf.sprintf "median estimate %.0f within the data range" p50)
    true
    (p50 >= 1.0 && p50 <= float_of_int n);
  (* Same seed, same stream: byte-identical retained samples. *)
  let r2 = Stats.Reservoir.create ~capacity:cap ~seed:3 () in
  for i = 1 to n do
    Stats.Reservoir.observe r2 (float_of_int i)
  done;
  Alcotest.(check bool) "deterministic subsample" true
    (Stats.Reservoir.samples r = Stats.Reservoir.samples r2);
  Stats.Reservoir.reset r;
  check_int "reset forgets the stream" 0 (Stats.Reservoir.count r);
  check_int "reset empties the sample" 0 (Stats.Reservoir.sample_count r)

(* Vitter's Algorithm R is driven entirely by the reservoir's own RNG, so a
   fixed seed must make the whole observable surface — retained sample,
   every percentile, extremes — reproducible run to run.  The flight
   recorder's replay guarantee leans on this: percentiles recorded in a log
   can be regenerated offline from the same stream. *)
let test_reservoir_seeded_determinism () =
  let stream r =
    for i = 1 to 5_000 do
      Stats.Reservoir.observe r (float_of_int ((i * 7919) mod 1000))
    done
  in
  let make seed =
    let r = Stats.Reservoir.create ~capacity:32 ~seed () in
    stream r;
    r
  in
  let a = make 17 and b = make 17 in
  Alcotest.(check bool) "same seed: identical retained samples" true
    (Stats.Reservoir.samples a = Stats.Reservoir.samples b);
  List.iter
    (fun p ->
      check_float
        (Printf.sprintf "same seed: identical p%.0f" p)
        (Stats.Reservoir.percentile p a)
        (Stats.Reservoir.percentile p b))
    [ 0.0; 25.0; 50.0; 90.0; 99.0; 100.0 ];
  let lo_a, hi_a = Stats.Reservoir.min_max a and lo_b, hi_b = Stats.Reservoir.min_max b in
  check_float "same seed: identical min" lo_a lo_b;
  check_float "same seed: identical max" hi_a hi_b;
  (* A different seed keeps a different subsample of the same stream (the
     aggregates stay exact regardless). *)
  let c = make 18 in
  Alcotest.(check bool) "different seed: different subsample" true
    (Stats.Reservoir.samples a <> Stats.Reservoir.samples c);
  check_float "sum independent of seed" (Stats.Reservoir.sum a) (Stats.Reservoir.sum c)

let test_ewma () =
  let e = Stats.Ewma.create ~alpha:0.5 in
  Alcotest.(check bool) "not primed" false (Stats.Ewma.primed e);
  Stats.Ewma.observe e 10.0;
  check_float "first observation taken as-is" 10.0 (Stats.Ewma.value e);
  Stats.Ewma.observe e 20.0;
  check_float "decayed" 15.0 (Stats.Ewma.value e)

let test_window () =
  let w = Stats.Window.create 3 in
  Stats.Window.observe w 1.0;
  Stats.Window.observe w 2.0;
  Stats.Window.observe w 3.0;
  check_float "full window mean" 2.0 (Stats.Window.mean w);
  Stats.Window.observe w 7.0;
  (* Window now holds 2,3,7. *)
  check_float "sliding mean" 4.0 (Stats.Window.mean w);
  check_int "count capped" 3 (Stats.Window.count w)

(* --------------------------- Pqueue -------------------------- *)

let test_pqueue_order () =
  let q = Pqueue.create () in
  Pqueue.push q 5 "e";
  Pqueue.push q 1 "a";
  Pqueue.push q 3 "c";
  Pqueue.push q 1 "b";
  let order = ref [] in
  let rec drain () =
    match Pqueue.pop q with
    | None -> ()
    | Some (_, v) ->
        order := v :: !order;
        drain ()
  in
  drain ();
  Alcotest.(check (list string)) "ties in insertion order" [ "a"; "b"; "c"; "e" ] (List.rev !order)

let test_pqueue_peek () =
  let q = Pqueue.create () in
  Alcotest.(check (option int)) "empty peek" None (Pqueue.peek_key q);
  Pqueue.push q 9 ();
  Pqueue.push q 2 ();
  Alcotest.(check (option int)) "min key" (Some 2) (Pqueue.peek_key q);
  check_int "length" 2 (Pqueue.length q)

let prop_pqueue_sorted =
  QCheck.Test.make ~name:"pqueue pops keys in nondecreasing order" ~count:200
    QCheck.(list small_int)
    (fun keys ->
      let q = Pqueue.create () in
      List.iter (fun k -> Pqueue.push q k k) keys;
      let rec drain acc =
        match Pqueue.pop q with None -> List.rev acc | Some (k, _) -> drain (k :: acc)
      in
      let out = drain [] in
      out = List.sort compare keys)

(* --------------------------- Series -------------------------- *)

let test_series () =
  let s = Series.create "throughput" in
  Series.add s ~time:0.0 ~value:1.0;
  Series.add s ~time:1.0 ~value:3.0;
  Series.add s ~time:2.0 ~value:5.0;
  check_int "length" 3 (Series.length s);
  let t, v = Series.get s 1 in
  check_float "time" 1.0 t;
  check_float "value" 3.0 v;
  (match Series.mean_in s ~t0:0.5 ~t1:2.5 with
  | Some m -> check_float "mean in window" 4.0 m
  | None -> Alcotest.fail "expected samples in window");
  match Series.last s with
  | Some (t, v) ->
      check_float "last time" 2.0 t;
      check_float "last value" 5.0 v
  | None -> Alcotest.fail "expected last"

let test_series_bucketed () =
  let s = Series.create "x" in
  for i = 0 to 9 do
    Series.add s ~time:(float_of_int i) ~value:(float_of_int i)
  done;
  let buckets = Series.bucketed s ~t0:0.0 ~t1:10.0 ~buckets:5 in
  check_int "bucket count" 5 (Array.length buckets);
  let _, v0 = buckets.(0) in
  check_float "first bucket mean" 0.5 v0

(* --------------------------- Table --------------------------- *)

let test_table_render () =
  let t = Table.create ~title:"demo" ~header:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1.5" ];
  Table.add_row t [ "beta"; "22.0" ];
  let s = Table.render t in
  Alcotest.(check bool) "contains title" true (String.length s > 0 && String.sub s 0 7 = "== demo");
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "contains row" true (contains s "alpha");
  Alcotest.(check bool) "contains value" true (contains s "22.0")

let suite =
  [
    Alcotest.test_case "rng: determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng: split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "rng: float range" `Quick test_rng_float_range;
    Alcotest.test_case "rng: int range" `Quick test_rng_int_range;
    Alcotest.test_case "rng: exponential mean" `Quick test_rng_exponential_mean;
    Alcotest.test_case "rng: gaussian moments" `Quick test_rng_gaussian_moments;
    Alcotest.test_case "stats: basic" `Quick test_stats_basic;
    Alcotest.test_case "stats: variance" `Quick test_stats_variance;
    Alcotest.test_case "stats: geomean" `Quick test_stats_geomean;
    Alcotest.test_case "stats: empty-input contract" `Quick test_stats_empty_contract;
    Alcotest.test_case "stats: single-element percentiles" `Quick test_stats_single_element;
    Alcotest.test_case "stats: NaN ordering is deterministic" `Quick test_stats_nan_ordering;
    Alcotest.test_case "stats: reservoir exact below capacity" `Quick
      test_reservoir_exact_until_capacity;
    Alcotest.test_case "stats: reservoir bounded beyond capacity" `Quick
      test_reservoir_bounded_beyond_capacity;
    Alcotest.test_case "stats: reservoir deterministic under fixed seed" `Quick
      test_reservoir_seeded_determinism;
    Alcotest.test_case "stats: ewma" `Quick test_ewma;
    Alcotest.test_case "stats: window" `Quick test_window;
    Alcotest.test_case "pqueue: order" `Quick test_pqueue_order;
    Alcotest.test_case "pqueue: peek/length" `Quick test_pqueue_peek;
    QCheck_alcotest.to_alcotest prop_pqueue_sorted;
    Alcotest.test_case "series: basic" `Quick test_series;
    Alcotest.test_case "series: bucketed" `Quick test_series_bucketed;
    Alcotest.test_case "table: render" `Quick test_table_render;
  ]
