(* Cross-backend tests: the same bounded workload on the simulator and on
   the native OCaml 5 backend must agree on everything except timing —
   identical item counts through the pipeline, and event traces that both
   satisfy the runtime invariant oracle (pause/resume alternation, flushes
   inside pause windows, monotone clocks).  Also covers the batched
   channel operations: one [chan_op] charge per batch, not per item. *)

module Engine = Parcae_platform.Engine
module Chan = Parcae_platform.Chan
module Machine = Parcae_sim.Machine
open Parcae_core
open Parcae_runtime
module Obs = Parcae_obs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let items = 40
let work_ns = 50_000

(* The shared workload: produce | transform^dop | consume with a watcher
   that forces one reconfiguration (pause -> flush -> resume) mid-run. *)
let run_pipeline eng =
  let q1 = Chan.create ~capacity:8 eng "q1" and q2 = Chan.create ~capacity:8 eng "q2" in
  let produced = ref 0 and consumed = ref 0 in
  let produce =
    Pipeline.source ~name:"produce"
      ~forward:(Pipeline.forward_to q1)
      (fun _ctx ->
        if !produced >= items then Task_status.Complete
        else begin
          Engine.compute (work_ns / 4);
          Pipeline.send q1 !produced;
          incr produced;
          Task_status.Iterating
        end)
  in
  let transform =
    Pipeline.stage ~name:"transform" ~input:q1 ~load:(Pipeline.load q1)
      ~forward:(Pipeline.forward_to q2)
      (fun _ctx v ->
        Engine.compute work_ns;
        Pipeline.send q2 v;
        Task_status.Iterating)
  in
  let consume =
    Pipeline.stage ~ttype:Task.Seq ~name:"consume" ~input:q2
      ~forward:(fun _ -> ())
      (fun _ctx _ ->
        incr consumed;
        Task_status.Iterating)
  in
  let pd =
    Task.descriptor ~name:"pipeline"
      [ produce.Pipeline.task; transform.Pipeline.task; consume.Pipeline.task ]
  in
  let on_reset =
    Pipeline.make_reset ~stages:[ produce; transform; consume ] ~channels:[ q1; q2 ]
  in
  let config dop = Config.make [ Config.seq_task; Config.task dop; Config.seq_task ] in
  let region = Executor.launch ~budget:8 ~name:"diff" eng [ pd ] ~on_reset (config 2) in
  ignore
    (Engine.spawn eng ~name:"watcher" (fun () ->
         Engine.sleep 200_000;
         if not (Region.is_done region) then Executor.reconfigure region (config 3)));
  ignore (Engine.run ~until:60_000_000_000 eng);
  !consumed

(* Run [f] with a fresh trace sink installed; return (result, events). *)
let traced f =
  let sink = Obs.Sink.create ~capacity:100_000 () in
  let r = Obs.Trace.with_sink sink f in
  (r, Obs.Sink.events sink)

let oracle_ok label events =
  match Obs.Oracle.check events with
  | Ok _ -> ()
  | Error vs -> Alcotest.failf "%s: oracle violations:\n%s" label (Obs.Oracle.violations_to_string vs)

let test_differential () =
  let sim_count, sim_events =
    traced (fun () -> run_pipeline (Engine.create (Machine.test_machine ~cores:8 ())))
  in
  let nat_count, nat_events =
    traced (fun () ->
        let eng = Engine.create_native ~pool:2 () in
        let n = run_pipeline eng in
        Engine.shutdown eng;
        n)
  in
  check_int "sim consumes every item" items sim_count;
  check_int "native consumes every item" items nat_count;
  oracle_ok "sim trace" sim_events;
  oracle_ok "native trace" nat_events;
  check_bool "both backends emitted events" true
    (List.length sim_events > 0 && List.length nat_events > 0)

(* Batched channel ops on the simulator: a 10-item batch costs one
   [chan_op] on each side, so virtual time stays far below the per-item
   cost of 10 charges. *)
let test_batch_single_charge () =
  let cost = 1_000 in
  let machine = { (Machine.test_machine ~cores:4 ()) with Machine.chan_op = cost } in
  let eng = Engine.create machine in
  let ch = Chan.create eng "batch" in
  let got = ref [] in
  ignore
    (Engine.spawn eng ~name:"producer" (fun () ->
         Chan.send_batch ch [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]));
  ignore
    (Engine.spawn eng ~name:"consumer" (fun () -> got := Chan.recv_batch ~max:10 ch));
  ignore (Engine.run eng);
  Alcotest.(check (list int)) "batch preserves order" [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] !got;
  let t = Engine.time eng in
  check_bool
    (Printf.sprintf "one charge per batch (time %d, per-item would be >= %d)" t (10 * cost))
    true
    (t >= cost && t <= 3 * cost)

(* Batched ops and an explicit drain on the native backend, under a trace
   sink: the drain must surface as a flush event and the trace must still
   satisfy the oracle. *)
let test_native_batch_and_flush () =
  let (n, dropped), events =
    traced (fun () ->
        let eng = Engine.create_native ~pool:1 () in
        let ch = Chan.create eng "nbatch" in
        let n = ref 0 and dropped = ref 0 in
        ignore
          (Engine.spawn eng ~name:"producer" (fun () ->
               Chan.send_batch ch (List.init 16 Fun.id);
               n := List.length (Chan.recv_batch ~max:12 ch);
               dropped := Chan.drain ch));
        ignore (Engine.run eng);
        Engine.shutdown eng;
        (!n, !dropped))
  in
  check_int "batch recv takes up to max" 12 n;
  check_int "drain drops the rest" 4 dropped;
  check_bool "drain emitted a flush event" true
    (List.exists
       (fun (e : Obs.Event.t) ->
         match e.Obs.Event.kind with Obs.Event.Chan_flush _ -> true | _ -> false)
       events);
  oracle_ok "native batch trace" events

(* The empty-reservoir contracts must hold when exercised from code running
   on a native domain, exactly as they do on the simulator's cooperative
   threads — latency percentiles are computed from worker-side reservoirs on
   both backends. *)
let test_native_empty_reservoir_contracts () =
  let module Res = Parcae_util.Stats.Reservoir in
  let checked = ref false in
  let eng = Engine.create_native ~pool:1 () in
  ignore
    (Engine.spawn eng ~name:"probe" (fun () ->
         let r = Res.create ~capacity:16 ~seed:5 () in
         check_int "empty count" 0 (Res.count r);
         check_int "empty sample_count" 0 (Res.sample_count r);
         check_bool "empty sum" true (Res.sum r = 0.0);
         check_bool "empty mean" true (Res.mean r = 0.0);
         check_bool "empty samples" true (Res.samples r = [||]);
         (match Res.percentile 50.0 r with
         | _ -> Alcotest.fail "percentile on empty reservoir must raise"
         | exception Invalid_argument _ -> ());
         (match Res.min_max r with
         | _ -> Alcotest.fail "min_max on empty reservoir must raise"
         | exception Invalid_argument _ -> ());
         (* reset on an already-empty reservoir is a no-op, not an error. *)
         Res.reset r;
         check_int "reset keeps it empty" 0 (Res.count r);
         checked := true));
  ignore (Engine.run eng);
  Engine.shutdown eng;
  check_bool "contract checks ran on the native domain" true !checked

let suite =
  [
    Alcotest.test_case "differential: sim and native agree, traces pass oracle" `Quick
      test_differential;
    Alcotest.test_case "native: empty-reservoir contracts hold on domains" `Quick
      test_native_empty_reservoir_contracts;
    Alcotest.test_case "chan: batched ops charge one op per batch" `Quick
      test_batch_single_charge;
    Alcotest.test_case "native: batch ops and drain pass the trace oracle" `Quick
      test_native_batch_and_flush;
  ]
