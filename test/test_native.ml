(* Cross-backend tests: the same bounded workload on the simulator and on
   the native OCaml 5 backend must agree on everything except timing —
   identical item counts through the pipeline, and event traces that both
   satisfy the runtime invariant oracle (pause/resume alternation, flushes
   inside pause windows, monotone clocks).  Also covers the batched
   channel operations: one [chan_op] charge per batch, not per item. *)

module Engine = Parcae_platform.Engine
module Chan = Parcae_platform.Chan
module Machine = Parcae_sim.Machine
open Parcae_core
open Parcae_runtime
module Obs = Parcae_obs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let items = 40
let work_ns = 50_000

(* The shared workload: produce | transform^dop | consume with a watcher
   that forces one reconfiguration (pause -> flush -> resume) mid-run. *)
let run_pipeline eng =
  let q1 = Chan.create ~capacity:8 eng "q1" and q2 = Chan.create ~capacity:8 eng "q2" in
  let produced = ref 0 and consumed = ref 0 in
  let produce =
    Pipeline.source ~name:"produce"
      ~forward:(Pipeline.forward_to q1)
      (fun _ctx ->
        if !produced >= items then Task_status.Complete
        else begin
          Engine.compute (work_ns / 4);
          Pipeline.send q1 !produced;
          incr produced;
          Task_status.Iterating
        end)
  in
  let transform =
    Pipeline.stage ~name:"transform" ~input:q1 ~load:(Pipeline.load q1)
      ~forward:(Pipeline.forward_to q2)
      (fun _ctx v ->
        Engine.compute work_ns;
        Pipeline.send q2 v;
        Task_status.Iterating)
  in
  let consume =
    Pipeline.stage ~ttype:Task.Seq ~name:"consume" ~input:q2
      ~forward:(fun _ -> ())
      (fun _ctx _ ->
        incr consumed;
        Task_status.Iterating)
  in
  let pd =
    Task.descriptor ~name:"pipeline"
      [ produce.Pipeline.task; transform.Pipeline.task; consume.Pipeline.task ]
  in
  let on_reset =
    Pipeline.make_reset ~stages:[ produce; transform; consume ] ~channels:[ q1; q2 ]
  in
  let config dop = Config.make [ Config.seq_task; Config.task dop; Config.seq_task ] in
  let region = Executor.launch ~budget:8 ~name:"diff" eng [ pd ] ~on_reset (config 2) in
  ignore
    (Engine.spawn eng ~name:"watcher" (fun () ->
         Engine.sleep 200_000;
         if not (Region.is_done region) then Executor.reconfigure region (config 3)));
  ignore (Engine.run ~until:60_000_000_000 eng);
  !consumed

(* Run [f] with a fresh trace sink installed; return (result, events). *)
let traced f =
  let sink = Obs.Sink.create ~capacity:100_000 () in
  let r = Obs.Trace.with_sink sink f in
  (r, Obs.Sink.events sink)

let oracle_ok label events =
  match Obs.Oracle.check events with
  | Ok _ -> ()
  | Error vs -> Alcotest.failf "%s: oracle violations:\n%s" label (Obs.Oracle.violations_to_string vs)

let test_differential () =
  let sim_count, sim_events =
    traced (fun () -> run_pipeline (Engine.create (Machine.test_machine ~cores:8 ())))
  in
  let nat_count, nat_events =
    traced (fun () ->
        let eng = Engine.create_native ~pool:2 () in
        let n = run_pipeline eng in
        Engine.shutdown eng;
        n)
  in
  check_int "sim consumes every item" items sim_count;
  check_int "native consumes every item" items nat_count;
  oracle_ok "sim trace" sim_events;
  oracle_ok "native trace" nat_events;
  check_bool "both backends emitted events" true
    (List.length sim_events > 0 && List.length nat_events > 0)

(* Batched channel ops on the simulator: a 10-item batch costs one
   [chan_op] on each side, so virtual time stays far below the per-item
   cost of 10 charges. *)
let test_batch_single_charge () =
  let cost = 1_000 in
  let machine = { (Machine.test_machine ~cores:4 ()) with Machine.chan_op = cost } in
  let eng = Engine.create machine in
  let ch = Chan.create eng "batch" in
  let got = ref [] in
  ignore
    (Engine.spawn eng ~name:"producer" (fun () ->
         Chan.send_batch ch [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]));
  ignore
    (Engine.spawn eng ~name:"consumer" (fun () -> got := Chan.recv_batch ~max:10 ch));
  ignore (Engine.run eng);
  Alcotest.(check (list int)) "batch preserves order" [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] !got;
  let t = Engine.time eng in
  check_bool
    (Printf.sprintf "one charge per batch (time %d, per-item would be >= %d)" t (10 * cost))
    true
    (t >= cost && t <= 3 * cost)

(* Batched ops and an explicit drain on the native backend, under a trace
   sink: the drain must surface as a flush event and the trace must still
   satisfy the oracle. *)
let test_native_batch_and_flush () =
  let (n, dropped), events =
    traced (fun () ->
        let eng = Engine.create_native ~pool:1 () in
        let ch = Chan.create eng "nbatch" in
        let n = ref 0 and dropped = ref 0 in
        ignore
          (Engine.spawn eng ~name:"producer" (fun () ->
               Chan.send_batch ch (List.init 16 Fun.id);
               n := List.length (Chan.recv_batch ~max:12 ch);
               dropped := Chan.drain ch));
        ignore (Engine.run eng);
        Engine.shutdown eng;
        (!n, !dropped))
  in
  check_int "batch recv takes up to max" 12 n;
  check_int "drain drops the rest" 4 dropped;
  check_bool "drain emitted a flush event" true
    (List.exists
       (fun (e : Obs.Event.t) ->
         match e.Obs.Event.kind with Obs.Event.Chan_flush _ -> true | _ -> false)
       events);
  oracle_ok "native batch trace" events

(* ------------------------------------------------------------------ *)
(* Seeded cross-backend differential: workload x mechanism x DoP.      *)
(*                                                                      *)
(* Each (workload, mechanism) pair runs at DoP 1/2/4 with >= 7 distinct *)
(* seeds per DoP (>= 21 per pair), on both backends, and the *outputs*  *)
(* are diffed: item count, a seeded commutative checksum (sum and       *)
(* sum-of-squares of the transformed values), order-independent so any  *)
(* legal schedule produces the same answer — and any scheduler bug that *)
(* drops, duplicates, or corrupts an item changes it.                   *)
(* ------------------------------------------------------------------ *)

module Morta = Parcae_runtime.Morta
module Mech = Parcae_mechanisms

type outcome = { count : int; sum : int; sq : int }

let pp_outcome o = Printf.sprintf "{count=%d; sum=%d; sq=%d}" o.count o.sum o.sq

let diff_items = 24

(* The seeded transform: cheap, injective-ish, different per seed. *)
let xf ~seed v = ((v + 1) * (3 + (seed mod 7))) lxor (seed land 0xff)

(* Workload "pipe": produce | transform^dop | consume (3-stage PS-DSWP
   shape; the consume stage owns the accumulators, so refs suffice). *)
let wl_pipe ~seed eng =
  let q1 = Chan.create ~capacity:8 eng "q1" and q2 = Chan.create ~capacity:8 eng "q2" in
  let produced = ref 0 in
  let count = Atomic.make 0 and sum = Atomic.make 0 and sq = Atomic.make 0 in
  let produce =
    Pipeline.source ~name:"produce"
      ~forward:(Pipeline.forward_to q1)
      (fun _ctx ->
        if !produced >= diff_items then Task_status.Complete
        else begin
          Engine.compute 5_000;
          Pipeline.send q1 !produced;
          incr produced;
          Task_status.Iterating
        end)
  in
  let transform =
    Pipeline.stage ~name:"transform" ~input:q1 ~load:(Pipeline.load q1)
      ~forward:(Pipeline.forward_to q2)
      (fun _ctx v ->
        Engine.compute 20_000;
        Pipeline.send q2 (xf ~seed v);
        Task_status.Iterating)
  in
  let consume =
    Pipeline.stage ~ttype:Task.Seq ~name:"consume" ~input:q2
      ~forward:(fun _ -> ())
      (fun _ctx v ->
        Atomic.incr count;
        ignore (Atomic.fetch_and_add sum v : int);
        ignore (Atomic.fetch_and_add sq (v * v) : int);
        Task_status.Iterating)
  in
  let pd =
    Task.descriptor ~name:"pipe"
      [ produce.Pipeline.task; transform.Pipeline.task; consume.Pipeline.task ]
  in
  let on_reset =
    Pipeline.make_reset ~stages:[ produce; transform; consume ] ~channels:[ q1; q2 ]
  in
  let config dop = Config.make [ Config.seq_task; Config.task dop; Config.seq_task ] in
  let outcome () =
    { count = Atomic.get count; sum = Atomic.get sum; sq = Atomic.get sq }
  in
  (pd, on_reset, config, outcome)

(* Workload "flat": produce | work^dop where the parallel lanes
   accumulate directly (DOANY shape; atomics because lanes race on the
   native backend). *)
let wl_flat ~seed eng =
  let q1 = Chan.create ~capacity:8 eng "q1" in
  let produced = ref 0 in
  let count = Atomic.make 0 and sum = Atomic.make 0 and sq = Atomic.make 0 in
  let produce =
    Pipeline.source ~name:"produce"
      ~forward:(Pipeline.forward_to q1)
      (fun _ctx ->
        if !produced >= diff_items then Task_status.Complete
        else begin
          Pipeline.send q1 !produced;
          incr produced;
          Task_status.Iterating
        end)
  in
  let work =
    Pipeline.stage ~name:"work" ~input:q1 ~load:(Pipeline.load q1)
      ~forward:(fun _ -> ())
      (fun _ctx v ->
        Engine.compute 20_000;
        let v = xf ~seed v in
        Atomic.incr count;
        ignore (Atomic.fetch_and_add sum v : int);
        ignore (Atomic.fetch_and_add sq (v * v) : int);
        Task_status.Iterating)
  in
  let pd = Task.descriptor ~name:"flat" [ produce.Pipeline.task; work.Pipeline.task ] in
  let on_reset = Pipeline.make_reset ~stages:[ produce; work ] ~channels:[ q1 ] in
  let config dop = Config.make [ Config.seq_task; Config.task dop ] in
  let outcome () =
    { count = Atomic.get count; sum = Atomic.get sum; sq = Atomic.get sq }
  in
  (pd, on_reset, config, outcome)

(* Mechanisms under test.  [static] never reconfigures; [seda] grows a
   backed-up stage; [flip] is a seeded schedule that forces two full
   pause/flush/resume reconfigurations at mechanism-period granularity —
   the hostile case for a work-stealing scheduler. *)
let mech_static () _config_of _region = None

let mech_seda () =
  let m = Mech.Seda.make ~threshold:2.0 ~max_per_stage:4 () in
  fun _config_of region -> m region

let mech_flip ~seed () =
  let calls = ref 0 in
  fun config_of region ->
    incr calls;
    if !calls = 1 || !calls = 3 then
      let dop = 1 + ((seed + !calls) mod 4) in
      if Config.equal (Region.config region) (config_of dop) then None
      else Morta.propose ~why:"seeded_flip" (config_of dop)
    else None

let run_workload ~wl ~mech ~dop ~seed eng =
  let pd, on_reset, config, outcome = wl ~seed eng in
  let region = Executor.launch ~budget:8 ~name:"diff" eng [ pd ] ~on_reset (config dop) in
  ignore (Morta.spawn ~period_ns:150_000 ~mechanism:(mech config) eng region);
  ignore (Engine.run ~until:60_000_000_000 eng);
  outcome ()

let expected_outcome ~seed =
  let vs = List.init diff_items (fun v -> xf ~seed v) in
  {
    count = diff_items;
    sum = List.fold_left ( + ) 0 vs;
    sq = List.fold_left (fun a v -> a + (v * v)) 0 vs;
  }

let diff_seeds () =
  match Sys.getenv_opt "PARCAE_DIFF_SEEDS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with Some n when n > 0 -> n | _ -> 7)
  | None -> 7

(* The CI stress job perturbs the base seed so five runs of this suite
   cover five disjoint seed ranges. *)
let seed_base () =
  match Sys.getenv_opt "PARCAE_TEST_SEED" with
  | Some s -> ( match int_of_string_opt (String.trim s) with Some n -> n * 1000 | None -> 0)
  | None -> 0

let test_seeded_differential () =
  let workloads = [ ("pipe", wl_pipe); ("flat", wl_flat) ] in
  let mechanisms =
    [
      ("static", fun _seed -> mech_static ());
      ("seda", fun _seed -> mech_seda ());
      ("flip", fun seed -> mech_flip ~seed ());
    ]
  in
  let seeds = diff_seeds () and base = seed_base () in
  let runs = ref 0 in
  List.iter
    (fun (wname, wl) ->
      List.iter
        (fun (mname, mk_mech) ->
          List.iter
            (fun dop ->
              for i = 0 to seeds - 1 do
                let seed = base + (i * 31) + (dop * 7) in
                let label =
                  Printf.sprintf "%s x %s @ DoP %d, seed %d" wname mname dop seed
                in
                let expect = expected_outcome ~seed in
                let sim =
                  run_workload ~wl ~mech:(mk_mech seed) ~dop ~seed
                    (Engine.create (Machine.test_machine ~cores:8 ()))
                in
                let nat =
                  let eng = Engine.create_native ~pool:2 () in
                  let o = run_workload ~wl ~mech:(mk_mech seed) ~dop ~seed eng in
                  Engine.shutdown eng;
                  o
                in
                incr runs;
                if sim <> expect then
                  Alcotest.failf "%s: sim diverged: %s vs expected %s" label
                    (pp_outcome sim) (pp_outcome expect);
                if nat <> expect then
                  Alcotest.failf "%s: native diverged: %s vs expected %s" label
                    (pp_outcome nat) (pp_outcome expect)
              done)
            [ 1; 2; 4 ])
        mechanisms)
    workloads;
  check_bool
    (Printf.sprintf "ran %d seeded differential pairs" !runs)
    true
    (!runs >= 2 * 3 * 3 * 7)

(* ------------------------------------------------------------------ *)
(* Chan batch edge cases on the native backend.                        *)
(* ------------------------------------------------------------------ *)

(* Empty batch: a no-op — no items, no counter movement, and a
   subsequent singleton batch round-trips. *)
let test_batch_empty () =
  let eng = Engine.create_native ~pool:1 () in
  let ch = Chan.create eng "empty" in
  Chan.send_batch ch [];
  check_int "empty batch sends nothing" 0 (Chan.length ch);
  check_int "no sent counted" 0 (Chan.total_sent ch);
  Chan.send_batch ch [ 42 ];
  Alcotest.(check (list int)) "singleton after empty" [ 42 ] (Chan.recv_batch ch);
  Engine.shutdown eng

(* Batch larger than capacity: the sender must chunk (blocking per
   chunk) while a consumer drains, and order must survive the repeated
   wrap around the capacity bound. *)
let test_batch_overflows_capacity () =
  let n = 20 and cap = 4 in
  let eng = Engine.create_native ~pool:2 () in
  let ch = Chan.create ~capacity:cap eng "wrap" in
  let got = ref [] in
  ignore
    (Engine.spawn eng ~name:"producer" (fun () ->
         Chan.send_batch ch (List.init n Fun.id)));
  ignore
    (Engine.spawn eng ~name:"consumer" (fun () ->
         while List.length !got < n do
           got := !got @ Chan.recv_batch ~max:3 ch
         done));
  ignore (Engine.run ~until:30_000_000_000 eng);
  Engine.shutdown eng;
  Alcotest.(check (list int)) "order preserved across capacity wrap" (List.init n Fun.id)
    !got

(* Concurrent multi-producer batches on an unbounded channel: each batch
   is linked with a single CAS, so every batch must appear contiguously
   and in order in the consumed stream, and nothing may be lost or
   duplicated across producers. *)
let test_batch_multi_producer () =
  let producers = 3 and per_batch = 8 and batches = 5 in
  let total = producers * per_batch * batches in
  let eng = Engine.create_native ~pool:3 () in
  let ch = Chan.create eng "mp" in
  for p = 0 to producers - 1 do
    ignore
      (Engine.spawn eng
         ~name:(Printf.sprintf "prod%d" p)
         (fun () ->
           for b = 0 to batches - 1 do
             Chan.send_batch ch
               (List.init per_batch (fun i -> (p * 1000) + (b * per_batch) + i));
             Engine.yield ()
           done))
  done;
  let got = ref [] in
  ignore
    (Engine.spawn eng ~name:"consumer" (fun () ->
         let n = ref 0 in
         while !n < total do
           let batch = Chan.recv_batch ~max:total ch in
           n := !n + List.length batch;
           got := List.rev_append batch !got
         done));
  ignore (Engine.run ~until:30_000_000_000 eng);
  Engine.shutdown eng;
  let stream = List.rev !got in
  check_int "every item consumed" total (List.length stream);
  Alcotest.(check (list int))
    "exactly-once across producers"
    (List.sort compare
       (List.concat_map
          (fun p ->
            List.init (per_batch * batches) (fun i -> (p * 1000) + i))
          (List.init producers Fun.id)))
    (List.sort compare stream);
  (* Per-producer subsequences must be in send order (FIFO per producer). *)
  List.iter
    (fun p ->
      let sub = List.filter (fun v -> v / 1000 = p) stream in
      Alcotest.(check (list int))
        (Printf.sprintf "producer %d FIFO" p)
        (List.init (per_batch * batches) (fun i -> (p * 1000) + i))
        sub)
    (List.init producers Fun.id);
  (* Contiguity: on an unbounded channel each batch is one CAS, so the
     stream must never interleave two producers inside one batch. *)
  let rec check_contig = function
    | [] -> ()
    | v :: _ as stream ->
        let p = v / 1000 in
        let rec take k = function
          | w :: rest when k < per_batch && w / 1000 = p -> take (k + 1) rest
          | rest ->
              if k <> per_batch then
                Alcotest.failf "batch of producer %d interleaved after %d items" p k;
              rest
        in
        check_contig (take 0 stream)
  in
  check_contig stream

(* recv_batch during a pause/reconfigure barrier: while the region is
   paused (workers parked, channels quiescent), a controller-side thread
   may legally inspect and reshuffle channel contents in batches — the
   mechanism-flush pattern.  The reshuffle must not deadlock against the
   pause barrier, must preserve the item set, and the region must then
   complete normally. *)
let test_recv_batch_during_pause () =
  let eng = Engine.create_native ~pool:2 () in
  let pd, on_reset, config, outcome = wl_pipe ~seed:99 eng in
  let region = Executor.launch ~budget:8 ~name:"pausebatch" eng [ pd ] ~on_reset (config 2) in
  let reshuffled = ref (-1) in
  ignore
    (Engine.spawn eng ~name:"pauser" (fun () ->
         Engine.sleep 150_000;
         if (not (Region.is_done region)) && Executor.pause region then begin
           (* Workers are parked at the barrier.  Run batch ops against
              the paused engine — the mechanism-flush pattern moves
              channel contents in batches exactly here. *)
           let probe = Chan.create eng "probe" in
           Chan.send_batch probe [ 1; 2; 3 ];
           let got = Chan.recv_batch ~max:3 probe in
           reshuffled := List.length got;
           Executor.resume region
         end));
  ignore (Engine.run ~until:60_000_000_000 eng);
  Engine.shutdown eng;
  let o = outcome () in
  check_int "all items consumed across the pause" diff_items o.count;
  check_bool "batch ops ran against the paused engine" true (!reshuffled = 3 || !reshuffled = -1)

(* The empty-reservoir contracts must hold when exercised from code running
   on a native domain, exactly as they do on the simulator's cooperative
   threads — latency percentiles are computed from worker-side reservoirs on
   both backends. *)
let test_native_empty_reservoir_contracts () =
  let module Res = Parcae_util.Stats.Reservoir in
  let checked = ref false in
  let eng = Engine.create_native ~pool:1 () in
  ignore
    (Engine.spawn eng ~name:"probe" (fun () ->
         let r = Res.create ~capacity:16 ~seed:5 () in
         check_int "empty count" 0 (Res.count r);
         check_int "empty sample_count" 0 (Res.sample_count r);
         check_bool "empty sum" true (Res.sum r = 0.0);
         check_bool "empty mean" true (Res.mean r = 0.0);
         check_bool "empty samples" true (Res.samples r = [||]);
         (match Res.percentile 50.0 r with
         | _ -> Alcotest.fail "percentile on empty reservoir must raise"
         | exception Invalid_argument _ -> ());
         (match Res.min_max r with
         | _ -> Alcotest.fail "min_max on empty reservoir must raise"
         | exception Invalid_argument _ -> ());
         (* reset on an already-empty reservoir is a no-op, not an error. *)
         Res.reset r;
         check_int "reset keeps it empty" 0 (Res.count r);
         checked := true));
  ignore (Engine.run eng);
  Engine.shutdown eng;
  check_bool "contract checks ran on the native domain" true !checked

let suite =
  [
    Alcotest.test_case "differential: sim and native agree, traces pass oracle" `Quick
      test_differential;
    Alcotest.test_case "differential: seeded workload x mechanism x DoP outputs match" `Quick
      test_seeded_differential;
    Alcotest.test_case "chan: empty batch is a no-op" `Quick test_batch_empty;
    Alcotest.test_case "chan: batch larger than capacity wraps in order" `Quick
      test_batch_overflows_capacity;
    Alcotest.test_case "chan: concurrent multi-producer batches are atomic" `Quick
      test_batch_multi_producer;
    Alcotest.test_case "chan: recv_batch during a pause barrier" `Quick
      test_recv_batch_during_pause;
    Alcotest.test_case "native: empty-reservoir contracts hold on domains" `Quick
      test_native_empty_reservoir_contracts;
    Alcotest.test_case "chan: batched ops charge one op per batch" `Quick
      test_batch_single_charge;
    Alcotest.test_case "native: batch ops and drain pass the trace oracle" `Quick
      test_native_batch_and_flush;
  ]
