(* The ferret image search engine under the TBF mechanism (the paper's
   Section 6.3.2 and Figure 8.6 scenario).

     dune exec examples/search_engine.exe

   ferret's six-stage pipeline (load -> seg -> extract -> vec -> rank ->
   out) is heavily unbalanced: rank costs 12 ms per query against 1.5-3 ms
   for the other stages.  Starting from one thread per stage, TBF measures
   stage execution times through Decima, detects the imbalance, and
   switches to the fused scheme in which the four parallel stages are
   collapsed into one "combined" parallel task that all spare threads
   execute. *)

open Parcae_sim
module Engine = Parcae_platform.Engine
module Chan = Parcae_platform.Chan
module Lock = Parcae_platform.Lock
open Parcae_core
open Parcae_runtime
open Parcae_workloads
module Mech = Parcae_mechanisms
module Rng = Parcae_util.Rng

let () =
  let machine = Machine.xeon_x7460 in
  let eng = Engine.create machine in
  let app = Ferret.make ~budget:machine.Machine.cores eng in

  (* Batch mode: 25k queries pre-loaded, end-of-stream after the last. *)
  let rng = Rng.create 7 in
  ignore
    (Load_gen.spawn_batch ~rng ~m:25_000 ~queue:app.App.queue ~metrics:app.App.metrics eng);

  let region =
    Executor.launch ~budget:24 ~name:"ferret" eng app.App.schemes
      ~on_pause:app.App.on_pause ~on_reset:app.App.on_reset (App.config app "single")
  in
  ignore
    (Morta.spawn
       ~stop:(fun () -> Region.is_done region)
       ~period_ns:100_000_000
       ~mechanism:(Mech.Tbf.make ?fused_choice:app.App.fused_choice ~warmup:60 ())
       eng region);

  ignore
    (Engine.spawn eng ~name:"reporter" (fun () ->
         let prev = ref 0 in
         while not (Region.is_done region) do
           Engine.sleep 1_000_000_000;
           let served = Metrics.completed app.App.metrics in
           Printf.printf "t=%5.1fs  scheme=%-13s  config=%-22s  %.0f queries/s\n"
             (Engine.seconds_of_ns (Engine.now ()))
             (Region.scheme_name region)
             (Config.to_string (Region.config region))
             (float_of_int (served - !prev) /. 1.0);
           prev := served
         done));

  ignore (Engine.run ~until:300_000_000_000 eng);
  Printf.printf "\n%d queries answered at a sustained %.0f queries/s; scheme switches: %d\n"
    (Metrics.completed app.App.metrics)
    (Metrics.throughput app.App.metrics)
    (Region.scheme_switches region)
