(* Quickstart: a three-stage pipeline made flexible with the Parcae API.

     dune exec examples/quickstart.exe

   The program builds a produce -> transform -> consume pipeline on the
   simulated 24-thread platform, launches it under Morta with the TBF
   (throughput balance) mechanism, and shows the runtime discovering that
   the transform stage deserves nearly all the threads. *)

open Parcae_sim
module Engine = Parcae_platform.Engine
module Chan = Parcae_platform.Chan
module Lock = Parcae_platform.Lock
open Parcae_core
open Parcae_runtime
module Mech = Parcae_mechanisms

let () =
  let machine = Machine.xeon_x7460 in
  let eng = Engine.create machine in

  (* Stage plumbing: bounded channels between stages. *)
  let q1 = Chan.create ~capacity:8 eng "q1" and q2 = Chan.create ~capacity:8 eng "q2" in
  let produced = ref 0 and consumed = ref 0 in
  let n_items = 150_000 in

  (* The three tasks, built with the Pipeline helpers that implement the
     pause/flush protocol of the paper's Section 4.6. *)
  let produce =
    Pipeline.source ~name:"produce" ~forward:(Pipeline.forward_to q1) (fun _ctx ->
        if !produced >= n_items then Task_status.Complete
        else begin
          Engine.compute 2_000 (* 2 us to read an item *);
          Pipeline.send q1 !produced;
          incr produced;
          Task_status.Iterating
        end)
  in
  let transform =
    Pipeline.stage ~name:"transform" ~input:q1 ~load:(Pipeline.load q1)
      ~forward:(Pipeline.forward_to q2) (fun ctx item ->
        ctx.Task.hook_begin ();
        Engine.compute 40_000 (* 40 us of real work *);
        ctx.Task.hook_end ();
        Pipeline.send q2 (item * 2);
        Task_status.Iterating)
  in
  let consume =
    Pipeline.stage ~ttype:Task.Seq ~name:"consume" ~input:q2 ~forward:(fun _ -> ())
      (fun _ctx _item ->
        Engine.compute 1_000;
        incr consumed;
        Task_status.Iterating)
  in

  (* Declare the parallelism structure — but not the configuration: Morta
     will pick the degrees of parallelism. *)
  let pd =
    Task.descriptor ~name:"quickstart"
      [ produce.Pipeline.task; transform.Pipeline.task; consume.Pipeline.task ]
  in
  let on_reset =
    Pipeline.make_reset ~stages:[ produce; transform; consume ] ~channels:[ q1; q2 ]
  in

  (* Launch with a deliberately bad initial configuration (1 thread per
     stage) and let the TBF mechanism rebalance. *)
  let initial = Config.make [ Config.seq_task; Config.task 1; Config.seq_task ] in
  let region = Executor.launch ~budget:24 ~name:"quickstart" eng [ pd ] ~on_reset initial in
  ignore
    (Morta.spawn
       ~stop:(fun () -> Region.is_done region)
       ~period_ns:50_000_000 ~mechanism:(Mech.Tbf.make ()) eng region);

  (* Report progress from inside the simulation. *)
  ignore
    (Engine.spawn eng ~name:"reporter" (fun () ->
         while not (Region.is_done region) do
           Engine.sleep 50_000_000;
           Printf.printf "t=%5.2fs  config=%-14s  consumed=%6d\n"
             (Engine.seconds_of_ns (Engine.now ()))
             (Config.to_string (Region.config region))
             !consumed
         done));

  ignore (Engine.run eng);
  Printf.printf "\nDone: %d items in %.3f s of virtual time (%.0f items/s)\n" !consumed
    (Engine.seconds_of_ns (Engine.time eng))
    (float_of_int !consumed /. Engine.seconds_of_ns (Engine.time eng));
  Printf.printf "Final configuration: %s (threads: %d of 24)\n"
    (Config.to_string (Region.config region))
    (Config.threads (Region.config region));
  Printf.printf "Reconfigurations performed by Morta: %d\n" (Region.reconfig_count region)
