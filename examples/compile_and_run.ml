(* Nona end to end: compile a sequential loop, inspect what the compiler
   found, and watch the run-time controller drive the flexible binary
   through a resource-availability change.

     dune exec examples/compile_and_run.exe

   This is the Path-2 workflow of the paper's Figure 3.2: a sequential
   program goes through PDG construction, DOANY and PS-DSWP parallelization
   and flexible code generation; at run time the Parcae controller picks a
   scheme and degree of parallelism, and re-optimizes when the platform
   withdraws cores. *)

open Parcae_ir
open Parcae_pdg
open Parcae_sim
module Engine = Parcae_platform.Engine
module Chan = Parcae_platform.Chan
module Lock = Parcae_platform.Lock
open Parcae_nona
module R = Parcae_runtime
module Config = Parcae_core.Config

let () =
  let machine = Machine.xeon_x7460 in
  let loop = Kernels.kmeans ~n:1_200_000 () in
  Format.printf "Compiling loop %s:@.%a@." loop.Loop.name Loop.pp loop;

  let c = Compiler.compile loop in
  Format.printf "PDG: %d nodes, %d dependences (%d loop-carried)@."
    (Pdg.node_count c.Compiler.pdg)
    (List.length c.Compiler.pdg.Pdg.deps)
    (List.length (Pdg.carried c.Compiler.pdg));
  Format.printf "inductions: %d, reductions: %d@."
    (List.length c.Compiler.pdg.Pdg.inductions)
    (List.length c.Compiler.pdg.Pdg.reductions);
  Format.printf "%a" Scc.pp c.Compiler.scc;
  (match c.Compiler.pipeline with
  | Some pipe -> Format.printf "PS-DSWP pipeline:@.%a" Mtcg.pp pipe
  | None -> Format.printf "no PS-DSWP pipeline@.");
  Format.printf "DOANY applicable: %b@.@." (c.Compiler.doany <> None);

  (* Launch on the simulated platform under the closed-loop controller. *)
  let eng = Engine.create machine in
  let h = Compiler.launch ~budget:24 eng c in
  let ctl =
    R.Controller.create
      ~params:{ R.Controller.default_params with R.Controller.npar_factor = 16; monitor_ns = 50_000_000 }
      h.Compiler.region
  in
  ignore (R.Controller.spawn eng ctl);

  (* The platform withdraws 16 of the 24 threads two seconds in. *)
  ignore
    (Engine.spawn eng ~name:"platform" (fun () ->
         Engine.sleep 2_000_000_000;
         Printf.printf "t=%5.2fs  [platform] budget cut to 8 threads\n"
           (Engine.seconds_of_ns (Engine.now ()));
         R.Region.set_budget h.Compiler.region 8;
         R.Controller.notify_resource_change ctl));

  ignore
    (Engine.spawn eng ~name:"reporter" (fun () ->
         while not (R.Region.is_done h.Compiler.region) do
           Engine.sleep 500_000_000;
           Printf.printf "t=%5.2fs  scheme=%-8s config=%-14s (%2d threads) iterations=%d\n"
             (Engine.seconds_of_ns (Engine.now ()))
             (R.Region.scheme_name h.Compiler.region)
             (Config.to_string (R.Region.config h.Compiler.region))
             (Config.threads (R.Region.config h.Compiler.region))
             h.Compiler.rs.Flex.next_iter
         done));

  ignore (Engine.run ~until:600_000_000_000 eng);
  let seq_ns = (Interp.run loop).Interp.work_ns in
  Printf.printf "\nCompleted %d iterations in %.2f s of virtual time (sequential: %.2f s)\n"
    h.Compiler.rs.Flex.next_iter
    (Engine.seconds_of_ns (Engine.time eng))
    (float_of_int seq_ns *. 1e-9);
  Printf.printf "Semantics preserved vs. reference interpreter: %b\n"
    (Compiler.preserves_semantics h)
