(* A video transcoding server riding out a load spike (the scenario that
   motivates the paper's Chapter 2).

     dune exec examples/video_server.exe

   Requests arrive at 30% of the platform's capacity, spike to 105% for a
   while, and fall back.  The WQ-Linear mechanism continuously re-derives
   the inner (per-video) degree of parallelism from the work-queue
   occupancy: under light load each video is transcoded by a team of 8
   threads (low latency); under the spike the inner parallelism is turned
   off so all 24 threads serve distinct videos (maximum throughput). *)

open Parcae_sim
module Engine = Parcae_platform.Engine
module Chan = Parcae_platform.Chan
module Lock = Parcae_platform.Lock
open Parcae_core
open Parcae_runtime
open Parcae_workloads
module Mech = Parcae_mechanisms
module Rng = Parcae_util.Rng

let () =
  let machine = Machine.xeon_x7460 in
  let eng = Engine.create machine in
  let app = Transcode.make ~budget:machine.Machine.cores eng in
  let maxthr = 14.3 (* videos/s, measured by Experiments.max_throughput *) in

  (* Launch the server with inner parallelism on, managed by WQ-Linear. *)
  let region =
    Executor.launch ~budget:24 ~name:"video-server" eng app.App.schemes
      ~on_pause:app.App.on_pause ~on_reset:app.App.on_reset
      (App.config app "inner-max")
  in
  let mechanism =
    Mech.Wq_linear.nested ~load:app.App.wq_load ~dpmin:1 ~dpmax:app.App.dpmax ~qmax:20.0
      ~make_config:(Option.get app.App.inner_dop_config) ()
  in
  ignore
    (Morta.spawn
       ~stop:(fun () -> Region.is_done region)
       ~period_ns:500_000_000 ~mechanism eng region);

  (* A load generator with three phases: calm, spike, calm. *)
  let rng = Rng.create 2024 in
  let phases = [ (0.30, 12.0); (1.05, 18.0); (0.30, 12.0) ] in
  ignore
    (Engine.spawn eng ~name:"load" (fun () ->
         let id = ref 0 in
         List.iter
           (fun (load, duration_s) ->
             let rate = load *. maxthr in
             let until = Engine.now () + int_of_float (duration_s *. 1e9) in
             while Engine.now () < until do
               Engine.sleep (int_of_float (Rng.exponential rng ~rate *. 1e9));
               let scale = Float.max 0.5 (Rng.gaussian rng ~mu:1.0 ~sigma:0.08) in
               let req = Request.create ~id:!id ~arrival_ns:(Engine.now ()) ~scale in
               incr id;
               Metrics.note_submit app.App.metrics;
               Pipeline.send app.App.queue req
             done)
           phases;
         Pipeline.inject_eos app.App.queue));

  (* Periodic report: queue depth, chosen configuration, response times. *)
  ignore
    (Engine.spawn eng ~name:"reporter" (fun () ->
         let prev = ref 0 in
         while not (Region.is_done region) do
           Engine.sleep 2_000_000_000;
           let served = Metrics.completed app.App.metrics in
           let window = served - !prev in
           prev := served;
           Printf.printf "t=%5.1fs  queue=%3.0f  config=%-18s  served=%5d (%.1f/s)\n"
             (Engine.seconds_of_ns (Engine.now ()))
             (app.App.wq_load ())
             (Config.to_string (Region.config region))
             served
             (float_of_int window /. 2.0)
         done));

  ignore (Engine.run ~until:120_000_000_000 eng);
  Printf.printf "\nServed %d requests; mean response %.2f s, p95 %.2f s, %d reconfigurations\n"
    (Metrics.completed app.App.metrics)
    (Metrics.mean_response app.App.metrics)
    (Metrics.p95_response app.App.metrics)
    (Region.reconfig_count region)
