bench/exp_nona.ml: Array Buffer Compiler Engine Flex Interp Kernels List Machine Option Parcae_core Parcae_ir Parcae_nona Parcae_runtime Parcae_sim Parcae_util Printf String
