bench/main.mli:
