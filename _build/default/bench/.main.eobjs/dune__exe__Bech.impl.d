bench/bech.ml: Analyze Bechamel Benchmark Hashtbl Instance List Measure Parcae_ir Parcae_pdg Parcae_sim Parcae_util Printf Staged Test Time Toolkit
