bench/main.ml: Array Bech Exp_api Exp_nona List Printf Sys
