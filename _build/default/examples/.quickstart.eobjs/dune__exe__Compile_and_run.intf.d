examples/compile_and_run.mli:
