examples/compile_and_run.ml: Compiler Engine Flex Format Interp Kernels List Loop Machine Mtcg Parcae_core Parcae_ir Parcae_nona Parcae_pdg Parcae_runtime Parcae_sim Pdg Printf Scc
