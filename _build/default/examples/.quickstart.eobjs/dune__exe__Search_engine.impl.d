examples/search_engine.ml: App Config Engine Executor Ferret Load_gen Machine Metrics Morta Parcae_core Parcae_mechanisms Parcae_runtime Parcae_sim Parcae_util Parcae_workloads Printf Region
