examples/video_server.mli:
