examples/search_engine.mli:
