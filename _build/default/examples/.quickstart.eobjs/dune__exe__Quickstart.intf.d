examples/quickstart.mli:
