examples/quickstart.ml: Chan Config Engine Executor Machine Morta Parcae_core Parcae_mechanisms Parcae_runtime Parcae_sim Pipeline Printf Region Task Task_status
