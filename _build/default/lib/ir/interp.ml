(* Reference sequential interpreter.

   Defines the ground-truth semantics of a loop: the state it leaves in its
   arrays, externals, and live-out registers, and the total compute cost in
   ns (the "sequential execution time" every speedup in Chapter 8 is
   measured against).  Parallel executions produced by Nona are checked for
   semantics preservation against this interpreter. *)

type result = {
  arrays : (string * int array) list;
  live_out : (Instr.reg * int) list;
  externals : Externals.observation;
  iterations : int;  (* completed iterations *)
  work_ns : int;  (* total instruction cost, sequential *)
}

let operand_value env = function Instr.Const c -> c | Instr.Reg r -> Hashtbl.find env r

(* Run [loop] against [externals] (fresh by default).  [max_iters] bounds
   While loops against non-termination in tests.  When [profile] is given
   (an array sized to [Loop.nodes]), per-node execution cost is accumulated
   into it — the execution profile weights Nona's partitioner uses
   (Section 4.3.2). *)
let run ?externals ?profile ?(max_iters = 10_000_000) (loop : Loop.t) =
  let ext = match externals with Some e -> e | None -> Externals.create () in
  let arrays = List.map (fun (n, a) -> (n, Array.copy a)) loop.Loop.arrays in
  let env : (Instr.reg, int) Hashtbl.t = Hashtbl.create 64 in
  let phi_vals : (Instr.reg, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (p : Instr.phi) ->
      let v = match p.Instr.init with Instr.Const c -> c | Instr.Reg _ -> invalid_arg "phi init must be const" in
      Hashtbl.replace phi_vals p.Instr.pdst v)
    loop.Loop.phis;
  let nphis = List.length loop.Loop.phis in
  let note_cost pos c =
    match profile with
    | Some p -> p.(nphis + pos) <- p.(nphis + pos) +. float_of_int c
    | None -> ()
  in
  let work = ref 0 in
  let iterations = ref 0 in
  let exited = ref false in
  let trip_limit = match loop.Loop.trip with Loop.Count n -> n | Loop.While -> max_iters in
  while (not !exited) && !iterations < trip_limit do
    Hashtbl.reset env;
    List.iter
      (fun (p : Instr.phi) -> Hashtbl.replace env p.Instr.pdst (Hashtbl.find phi_vals p.Instr.pdst))
      loop.Loop.phis;
    let broke = ref false in
    let rec exec pos = function
      | [] -> ()
      | instr :: rest ->
          work := !work + Instr.base_cost instr;
          note_cost pos (Instr.base_cost instr);
          (match instr with
          | Instr.Binop { dst; op; a; b } ->
              Hashtbl.replace env dst (Instr.eval_binop op (operand_value env a) (operand_value env b))
          | Instr.Load { dst; arr; idx } ->
              let a = List.assoc arr arrays in
              let i = operand_value env idx in
              if i < 0 || i >= Array.length a then invalid_arg (loop.Loop.name ^ ": load out of bounds");
              Hashtbl.replace env dst a.(i)
          | Instr.Store { arr; idx; v } ->
              let a = List.assoc arr arrays in
              let i = operand_value env idx in
              if i < 0 || i >= Array.length a then invalid_arg (loop.Loop.name ^ ": store out of bounds");
              a.(i) <- operand_value env v
          | Instr.Work { amount } ->
              let c = max 0 (operand_value env amount) in
              work := !work + c;
              note_cost pos c
          | Instr.Call { dst; fn; arg; _ } ->
              let v = Externals.call ext fn (operand_value env arg) in
              Option.iter (fun d -> Hashtbl.replace env d v) dst
          | Instr.Break_if { cond } ->
              if operand_value env cond <> 0 then broke := true);
          if not !broke then exec (pos + 1) rest
    in
    exec 0 loop.Loop.body;
    if !broke then exited := true
    else begin
      incr iterations;
      List.iter
        (fun (p : Instr.phi) -> Hashtbl.replace phi_vals p.Instr.pdst (Hashtbl.find env p.Instr.carry))
        loop.Loop.phis
    end
  done;
  {
    arrays;
    live_out = List.map (fun r -> (r, Hashtbl.find phi_vals r)) loop.Loop.live_out;
    externals = Externals.observe ext;
    iterations = !iterations;
    work_ns = !work;
  }

(* Structural equality of observable results, for semantics-preservation
   property tests.  The ordered output stream is compared exactly; all
   other observables are order-insensitive by construction. *)
let equal_observable a b =
  a.live_out = b.live_out
  && a.externals = b.externals
  && a.iterations = b.iterations
  && List.for_all2 (fun (n1, a1) (n2, a2) -> n1 = n2 && a1 = a2) a.arrays b.arrays
