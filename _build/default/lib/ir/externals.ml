(* The opaque routines an IR [Call] can reach.  These model the stateful
   library calls of real loop bodies:

   - ["rand"]: a shared pseudo-random stream.  Marked commutative in
     kernels, calls may execute in any order; the multiset of values drawn
     over n calls is order-independent, so any order-insensitive consumer
     (a sum, a set insert) produces the same observable result.
   - ["acc"]: add the argument into a named commutative accumulator.
   - ["insert"]: xor the argument into a set-like digest (order-free).
   - ["emit"]: append the argument to the ordered output stream — NOT
     commutative, so it sequentializes whatever stage performs it.

   One [Externals.t] is shared between the sequential interpreter run and
   every task of a parallel execution; parallel executions guard
   commutative calls with a critical section (DOANY, Section 4.3.1). *)

type t = {
  mutable rand_state : int64;
  mutable acc : int;
  mutable insert_digest : int;
  mutable emitted : int list;  (* reversed *)
  mutable calls : int;
}

let create ?(seed = 0x51ce5d4603902e1L) () =
  { rand_state = seed; acc = 0; insert_digest = 0; emitted = []; calls = 0 }

(* splitmix64 step, same generator as Parcae_util.Rng but independent. *)
let next_rand t =
  t.rand_state <- Int64.add t.rand_state 0x9E3779B97F4A7C15L;
  let z = t.rand_state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.shift_right_logical z 3)

(* Execute a call; returns the result value (0 for unit-returning calls). *)
let call t fn arg =
  t.calls <- t.calls + 1;
  match fn with
  | "rand" -> next_rand t
  | "acc" ->
      t.acc <- t.acc + arg;
      t.acc
  | "insert" ->
      t.insert_digest <- t.insert_digest lxor (arg * 0x9E3779B9 land max_int);
      t.insert_digest
  | "emit" ->
      t.emitted <- arg :: t.emitted;
      0
  | _ -> invalid_arg ("Externals.call: unknown function " ^ fn)

let emitted t = List.rev t.emitted

(* Observable summary used for semantics-preservation checks. *)
type observation = {
  obs_acc : int;
  obs_digest : int;
  obs_emitted : int list;
  obs_calls : int;
}

let observe t =
  { obs_acc = t.acc; obs_digest = t.insert_digest; obs_emitted = emitted t; obs_calls = t.calls }
