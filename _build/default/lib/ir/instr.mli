(** Instructions of the loop-nest IR Nona compiles.

    A loop body is a straight-line sequence of instructions over integer
    virtual registers and integer arrays, with phi nodes carrying values
    across iterations.  Every instruction has exact, executable semantics
    (see {!Interp}) so parallelized executions can be checked against the
    sequential reference.  Registers obey single assignment per
    iteration. *)

type reg = int

type operand = Const of int | Reg of reg

type binop =
  | Add
  | Sub
  | Mul
  | Div  (** rounds toward zero; division by zero yields 0 *)
  | Rem
  | Min
  | Max
  | Xor
  | And
  | Or
  | Shl
  | Shr
  | Eq
  | Ne
  | Lt
  | Le

type phi = { pdst : reg; init : operand; carry : reg }
(** A phi node in the loop header: [pdst] holds [init] on the first
    iteration and the previous iteration's value of [carry] afterwards. *)

type t =
  | Binop of { dst : reg; op : binop; a : operand; b : operand }
  | Load of { dst : reg; arr : string; idx : operand }
  | Store of { arr : string; idx : operand; v : operand }
  | Work of { amount : operand }
      (** consume [amount] ns of CPU: the opaque expensive computation of
          a real loop body *)
  | Call of { dst : reg option; fn : string; arg : operand; commutative : bool }
      (** a call to an opaque stateful routine; calls to the same [fn]
          depend on each other unless marked [commutative] — the paper's
          programmer annotation (Section 4.1) *)
  | Break_if of { cond : operand }
      (** exit the loop (before the rest of the iteration) when [cond] is
          non-zero *)

val base_cost : t -> int
(** Dispatch cost in ns; Work/Call add their own amounts on top. *)

val defs : t -> reg option
val uses : t -> reg list
val operand_uses : operand -> reg list

val eval_binop : binop -> int -> int -> int

val binop_to_string : binop -> string
val operand_to_string : operand -> string
val to_string : t -> string
