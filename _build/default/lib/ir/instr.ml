(* The loop-nest intermediate representation Nona compiles.

   The IR is deliberately small: a parallel region is a single loop whose
   body is a straight-line sequence of instructions over integer virtual
   registers and integer arrays, with phi-nodes carrying values across
   iterations and an optional data-dependent exit ([Break_if]).  This is
   the level at which the paper's compiler algorithms operate: dependence
   analysis, SCC formation, DOANY/PS-DSWP partitioning and multi-threaded
   code generation are all graph algorithms over instructions, and every
   instruction here has exact, executable semantics (see [Interp]) so
   parallelized executions can be checked against the sequential reference.

   Registers obey single assignment per iteration: a register is defined by
   exactly one phi or one body instruction. *)

type reg = int

type operand = Const of int | Reg of reg

type binop =
  | Add
  | Sub
  | Mul
  | Div  (* rounds toward zero; division by zero yields 0 *)
  | Rem
  | Min
  | Max
  | Xor
  | And
  | Or
  | Shl
  | Shr
  | Eq
  | Ne
  | Lt
  | Le

(* A phi node in the loop header: [dst] holds [init] on the first iteration
   and the previous iteration's value of [carry] afterwards. *)
type phi = { pdst : reg; init : operand; carry : reg }

type t =
  | Binop of { dst : reg; op : binop; a : operand; b : operand }
  | Load of { dst : reg; arr : string; idx : operand }
  | Store of { arr : string; idx : operand; v : operand }
  | Work of { amount : operand }
      (* consume [amount] ns of CPU: the opaque expensive computation of a
         real loop body, with a data-dependent cost if [amount] is a reg *)
  | Call of { dst : reg option; fn : string; arg : operand; commutative : bool }
      (* a call to an opaque stateful routine (rand(), hashtable insert,
         output); calls to the same [fn] depend on each other unless marked
         [commutative] (the paper's programmer annotation, Section 4.1) *)
  | Break_if of { cond : operand }
      (* exit the loop (before executing the rest of the iteration) when
         [cond] is non-zero *)

(* Default execution cost of an instruction in ns (Work/Call add their own
   amounts on top of this dispatch cost). *)
let base_cost = function
  | Binop _ -> 2
  | Load _ | Store _ -> 4
  | Work _ -> 1
  | Call _ -> 10
  | Break_if _ -> 1

let defs = function
  | Binop { dst; _ } | Load { dst; _ } -> Some dst
  | Call { dst; _ } -> dst
  | Store _ | Work _ | Break_if _ -> None

let operand_uses = function Const _ -> [] | Reg r -> [ r ]

let uses = function
  | Binop { a; b; _ } -> operand_uses a @ operand_uses b
  | Load { idx; _ } -> operand_uses idx
  | Store { idx; v; _ } -> operand_uses idx @ operand_uses v
  | Work { amount } -> operand_uses amount
  | Call { arg; _ } -> operand_uses arg
  | Break_if { cond } -> operand_uses cond

let eval_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then 0 else a / b
  | Rem -> if b = 0 then 0 else a mod b
  | Min -> min a b
  | Max -> max a b
  | Xor -> a lxor b
  | And -> a land b
  | Or -> a lor b
  | Shl -> a lsl (b land 62)
  | Shr -> a lsr (b land 62)
  | Eq -> if a = b then 1 else 0
  | Ne -> if a <> b then 1 else 0
  | Lt -> if a < b then 1 else 0
  | Le -> if a <= b then 1 else 0

let binop_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | Min -> "min"
  | Max -> "max"
  | Xor -> "xor"
  | And -> "and"
  | Or -> "or"
  | Shl -> "shl"
  | Shr -> "shr"
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"

let operand_to_string = function Const c -> string_of_int c | Reg r -> Printf.sprintf "r%d" r

let to_string = function
  | Binop { dst; op; a; b } ->
      Printf.sprintf "r%d = %s %s, %s" dst (binop_to_string op) (operand_to_string a)
        (operand_to_string b)
  | Load { dst; arr; idx } -> Printf.sprintf "r%d = load %s[%s]" dst arr (operand_to_string idx)
  | Store { arr; idx; v } ->
      Printf.sprintf "store %s[%s], %s" arr (operand_to_string idx) (operand_to_string v)
  | Work { amount } -> Printf.sprintf "work %s" (operand_to_string amount)
  | Call { dst; fn; arg; commutative } ->
      Printf.sprintf "%s%s(%s)%s"
        (match dst with Some d -> Printf.sprintf "r%d = " d | None -> "")
        fn (operand_to_string arg)
        (if commutative then " @commutative" else "")
  | Break_if { cond } -> Printf.sprintf "break_if %s" (operand_to_string cond)
