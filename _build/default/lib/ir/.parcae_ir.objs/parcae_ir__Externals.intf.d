lib/ir/externals.mli:
