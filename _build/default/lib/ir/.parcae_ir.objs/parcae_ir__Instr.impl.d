lib/ir/instr.ml: Printf
