lib/ir/kernels.mli: Loop
