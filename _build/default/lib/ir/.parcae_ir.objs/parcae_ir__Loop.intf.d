lib/ir/loop.mli: Format Instr
