lib/ir/interp.ml: Array Externals Hashtbl Instr List Loop Option
