lib/ir/instr.mli:
