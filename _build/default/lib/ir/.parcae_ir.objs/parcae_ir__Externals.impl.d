lib/ir/externals.ml: Int64 List
