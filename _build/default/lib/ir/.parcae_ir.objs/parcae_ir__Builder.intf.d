lib/ir/builder.mli: Instr Loop
