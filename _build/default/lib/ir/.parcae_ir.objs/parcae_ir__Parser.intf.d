lib/ir/parser.mli: Loop
