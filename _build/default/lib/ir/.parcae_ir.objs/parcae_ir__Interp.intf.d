lib/ir/interp.mli: Externals Instr Loop
