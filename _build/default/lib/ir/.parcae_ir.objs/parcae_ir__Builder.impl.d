lib/ir/builder.ml: Instr List Loop
