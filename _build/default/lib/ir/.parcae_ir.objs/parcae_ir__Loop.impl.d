lib/ir/loop.ml: Array Format Hashtbl Instr List Printf
