lib/ir/kernels.ml: Array Builder Instr Loop Option
