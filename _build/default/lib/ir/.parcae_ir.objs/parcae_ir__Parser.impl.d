lib/ir/parser.ml: Array Buffer Builder Hashtbl Instr List Loop Option Printf String
