(** The benchmark kernel suite for the Nona compiler evaluation (the
    paper's Section 8.3), modelled on the classes of C benchmark the paper
    compiles.  Expected parallelizations are asserted by the test suite;
    see each kernel's comment in the implementation for its calibration. *)

val blackscholes : ?n:int -> unit -> Loop.t
(** Independent heavy iterations: DOANY and PS-DSWP. *)

val crc32 : ?n:int -> unit -> Loop.t
(** Non-associative checksum recurrence: PS-DSWP only (parallel transform
    stage feeding a sequential update stage). *)

val url : ?n:int -> unit -> Loop.t
(** Commutative hash-set insert behind a programmer annotation: DOANY with
    critical sections, and PS-DSWP. *)

val kmeans : ?n:int -> unit -> Loop.t
(** Heavy per-point work plus privatizable sum and min reductions. *)

val histogram : ?n:int -> unit -> Loop.t
(** Unannotated read-modify-write of a bins array: hard carried
    dependence, PS-DSWP only. *)

val montecarlo : ?n:int -> unit -> Loop.t
(** Commutative rand + sum reduction; no sequential master SCC, so DOANY
    only. *)

val stringsearch : ?n:int -> unit -> Loop.t
(** A While loop with ordered emit: the classic 3-stage PS-DSWP shape. *)

val recurrence : ?n:int -> unit -> Loop.t
(** A tight recurrence with nothing to extract: must stay sequential. *)

val adaptive : ?n:int -> ?work:int -> unit -> Loop.t
(** Per-iteration work read from a knob cell the experiment driver mutates
    mid-run, modelling workload change (the paper's Section 8.3.2). *)

val finegrain : ?n:int -> unit -> Loop.t
(** A 2 us body dominated by its reduction: the Section 7.4 ablation
    kernel (per-iteration critical section vs privatize-and-merge). *)

val statecarry : ?n:int -> unit -> Loop.t
(** Several live cross-iteration registers in a short loop: the
    Section 7.1 ablation kernel (heap save/restore per iteration vs
    hoisted). *)

type expectation = {
  k_name : string;
  make : unit -> Loop.t;
  exp_doany : bool;
  exp_psdswp : bool;
}

val suite : expectation list
(** The eight kernels above (without the ablation/driver kernels), with
    the parallelizations each is expected to admit. *)
