(** The opaque routines an IR [Call] can reach — models of the stateful
    library calls of real loop bodies:

    - ["rand"]: a shared pseudo-random stream (order-insensitive as a
      multiset over n calls);
    - ["acc"]: add the argument into a commutative accumulator;
    - ["insert"]: xor the argument into a set-like digest;
    - ["emit"]: append to the ordered output stream — NOT commutative.

    One instance is shared between the sequential interpreter run and every
    task of a parallel execution; parallel executions guard commutative
    calls with a critical section. *)

type t

val create : ?seed:int64 -> unit -> t

val call : t -> string -> int -> int
(** Execute a call; returns its value (0 for unit-returning calls).
    @raise Invalid_argument on an unknown function. *)

val emitted : t -> int list
(** The ordered output stream so far. *)

(** Observable summary for semantics-preservation checks. *)
type observation = {
  obs_acc : int;
  obs_digest : int;
  obs_emitted : int list;
  obs_calls : int;
}

val observe : t -> observation
