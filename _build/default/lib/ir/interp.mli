(** Reference sequential interpreter: the ground-truth semantics of a
    loop, and the sequential execution time every speedup is measured
    against.  Parallel executions produced by Nona are checked for
    semantics preservation against this. *)

type result = {
  arrays : (string * int array) list;  (** final array contents *)
  live_out : (Instr.reg * int) list;  (** final live-out phi values *)
  externals : Externals.observation;
  iterations : int;  (** completed iterations *)
  work_ns : int;  (** total instruction cost, sequential *)
}

val run : ?externals:Externals.t -> ?profile:float array -> ?max_iters:int -> Loop.t -> result
(** Run the loop (fresh externals by default).  [max_iters] bounds While
    loops.  When [profile] is given (sized to [Loop.nodes]), per-node
    execution cost is accumulated into it — the execution-profile weights
    Nona's partitioner uses (the paper's Section 4.3.2). *)

val equal_observable : result -> result -> bool
(** Structural equality of observable results ([work_ns] included; set it
    equal on both sides to compare executions with different costs). *)
