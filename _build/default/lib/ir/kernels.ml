(* The benchmark kernel suite for the Nona compiler evaluation
   (Section 8.3).

   Each kernel is an IR loop modelled on the kind of C benchmark the paper
   compiles: a data-parallel numeric kernel, streaming checksums with a
   sequential recurrence, hash-table updates behind commutativity
   annotations, reductions, and an ordered-output search pipeline.  The
   [Work] amounts give each iteration a realistic cost so parallel speedups
   are visible above the simulator's communication overheads.

   Expected parallelizations (asserted by the test suite):
   - blackscholes: DOANY and PS-DSWP (independent heavy iterations);
   - crc32: PS-DSWP only (non-associative checksum recurrence);
   - url: DOANY (commutative hashtable insert) and PS-DSWP;
   - kmeans: DOANY with privatized sum/min reductions, and PS-DSWP;
   - histogram: PS-DSWP only (unannotated read-modify-write of bins);
   - montecarlo: DOANY (commutative rand + sum reduction), and PS-DSWP;
   - stringsearch: PS-DSWP only (While loop with ordered emit);
   - recurrence: sequential only (tight recurrence, nothing to extract). *)

open Instr

let init_array n f = Array.init n f

(* blackscholes: out[i] = price(strike[i]), ~80 us per option. *)
let blackscholes ?(n = 2000) () =
  let b = Builder.create "blackscholes" in
  Builder.array b "strike" (init_array n (fun i -> 50 + (i mod 100)));
  Builder.array b "out" (Array.make n 0);
  let i = Builder.induction b ~from:0 ~step:1 in
  let s = Builder.load b "strike" (Reg i) in
  Builder.work b (Const 80_000);
  let v1 = Builder.mul b (Reg s) (Const 3) in
  let v2 = Builder.add b (Reg v1) (Reg i) in
  Builder.store b "out" (Reg i) (Reg v2);
  Builder.finish ~trip:(Loop.Count n) b

(* crc32: checksum = checksum * 31 + transform(data[i]); the multiply-add
   recurrence is not an associative-commutative reduction, so the update
   stays a sequential pipeline stage while the 30 us transform parallelizes. *)
let crc32 ?(n = 3000) () =
  let b = Builder.create "crc32" in
  Builder.array b "data" (init_array n (fun i -> (i * 7919) land 0xffff));
  let i = Builder.induction b ~from:0 ~step:1 in
  let x = Builder.load b "data" (Reg i) in
  Builder.work b (Const 30_000);
  let y = Builder.binop b Xor (Reg x) (Const 0x5a5a) in
  let y2 = Builder.mul b (Reg y) (Const 17) in
  let crc = Builder.phi b ~init:(Const 0xffff) in
  let t = Builder.mul b (Reg crc) (Const 31) in
  let crc' = Builder.add b (Reg t) (Reg y2) in
  Builder.set_carry b ~phi:crc ~carry:crc';
  Builder.live_out b crc;
  Builder.finish ~trip:(Loop.Count n) b

(* url: parse a record (~40 us) and insert its key into a hash set; the
   insert is annotated commutative, so iterations may run in any order with
   the insert in a critical section. *)
let url ?(n = 2500) () =
  let b = Builder.create "url" in
  Builder.array b "urls" (init_array n (fun i -> (i * 2654435761) land 0xfffff));
  let i = Builder.induction b ~from:0 ~step:1 in
  let x = Builder.load b "urls" (Reg i) in
  Builder.work b (Const 40_000);
  let key = Builder.binop b Xor (Reg x) (Const 0x9e37) in
  ignore (Builder.call ~commutative:true ~returns:false b "insert" (Reg key));
  Builder.finish ~trip:(Loop.Count n) b

(* kmeans assignment step: ~60 us distance computation per point, plus a
   running distance sum and a running minimum — both privatizable. *)
let kmeans ?(n = 2500) () =
  let b = Builder.create "kmeans" in
  Builder.array b "points" (init_array n (fun i -> (i * 31) mod 1000));
  let i = Builder.induction b ~from:0 ~step:1 in
  let p = Builder.load b "points" (Reg i) in
  Builder.work b (Const 60_000);
  let d = Builder.binop b Rem (Reg p) (Const 97) in
  let sum = Builder.reduce b Add ~init:(Const 0) (Reg d) in
  let best = Builder.reduce b Min ~init:(Const max_int) (Reg d) in
  Builder.live_out b sum;
  Builder.live_out b best;
  Builder.finish ~trip:(Loop.Count n) b

(* histogram: bin increments via load-modify-store on a bins array indexed
   by data, which the index analysis cannot disambiguate — the update is a
   hard carried dependence and only pipeline parallelism applies. *)
let histogram ?(n = 3000) () =
  let b = Builder.create "histogram" in
  Builder.array b "data" (init_array n (fun i -> (i * 131) land 0x3f));
  Builder.array b "bins" (Array.make 64 0);
  let i = Builder.induction b ~from:0 ~step:1 in
  let x = Builder.load b "data" (Reg i) in
  Builder.work b (Const 25_000);
  let bin = Builder.binop b And (Reg x) (Const 63) in
  let old = Builder.load b "bins" (Reg bin) in
  let nu = Builder.add b (Reg old) (Const 1) in
  Builder.store b "bins" (Reg bin) (Reg nu);
  Builder.finish ~trip:(Loop.Count n) b

(* montecarlo: draw from the shared generator (annotated commutative),
   simulate ~50 us, accumulate. *)
let montecarlo ?(n = 3000) () =
  let b = Builder.create "montecarlo" in
  let r = Builder.call ~commutative:true b "rand" (Const 0) in
  let r = Option.get r in
  Builder.work b (Const 50_000);
  let v = Builder.binop b Rem (Reg r) (Const 1000) in
  let sum = Builder.reduce b Add ~init:(Const 0) (Reg v) in
  Builder.live_out b sum;
  Builder.finish ~trip:(Loop.Count n) b

(* stringsearch: scan until the terminator, ~45 us of matching per record,
   ordered emission of match results: a While loop that only PS-DSWP can
   parallelize (load/exit control -> parallel match -> sequential emit). *)
let stringsearch ?(n = 2000) () =
  let total = n + 1 in
  let b = Builder.create "stringsearch" in
  Builder.array b "text"
    (init_array total (fun i -> if i = total - 1 then 0 else 1 + ((i * 37) land 0xff)));
  let i = Builder.induction b ~from:0 ~step:1 in
  let x = Builder.load b "text" (Reg i) in
  let stop = Builder.binop b Eq (Reg x) (Const 0) in
  Builder.break_if b (Reg stop);
  Builder.work b (Const 45_000);
  let m = Builder.binop b And (Reg x) (Const 7) in
  let hit = Builder.binop b Eq (Reg m) (Const 3) in
  let score = Builder.mul b (Reg hit) (Reg x) in
  ignore (Builder.call ~returns:false b "emit" (Reg score));
  Builder.finish ~trip:Loop.While b

(* recurrence: x' = (x * x + i) mod m — the whole body sits inside the
   recurrence cycle, so there is nothing to extract and Nona must keep the
   loop sequential. *)
let recurrence ?(n = 4000) () =
  let b = Builder.create "recurrence" in
  let i = Builder.induction b ~from:0 ~step:1 in
  let x = Builder.phi b ~init:(Const 7) in
  let sq = Builder.mul b (Reg x) (Reg x) in
  let s = Builder.add b (Reg sq) (Reg i) in
  let x' = Builder.binop b Rem (Reg s) (Const 65521) in
  Builder.set_carry b ~phi:x ~carry:x';
  Builder.live_out b x;
  Builder.finish ~trip:(Loop.Count n) b

(* The suite, with the parallelizations each kernel is expected to admit. *)
type expectation = { k_name : string; make : unit -> Loop.t; exp_doany : bool; exp_psdswp : bool }

let suite =
  [
    { k_name = "blackscholes"; make = (fun () -> blackscholes ()); exp_doany = true; exp_psdswp = true };
    { k_name = "crc32"; make = (fun () -> crc32 ()); exp_doany = false; exp_psdswp = true };
    { k_name = "url"; make = (fun () -> url ()); exp_doany = true; exp_psdswp = true };
    { k_name = "kmeans"; make = (fun () -> kmeans ()); exp_doany = true; exp_psdswp = true };
    { k_name = "histogram"; make = (fun () -> histogram ()); exp_doany = false; exp_psdswp = true };
    (* montecarlo has no sequential master SCC, so the pipeline protocol
       does not apply; DOANY serves it. *)
    { k_name = "montecarlo"; make = (fun () -> montecarlo ()); exp_doany = true; exp_psdswp = false };
    { k_name = "stringsearch"; make = (fun () -> stringsearch ()); exp_doany = false; exp_psdswp = true };
    { k_name = "recurrence"; make = (fun () -> recurrence ()); exp_doany = false; exp_psdswp = false };
  ]

(* adaptive: per-iteration work is read from a knob cell that the
   experiment driver mutates mid-run, modelling workload change
   (Section 8.3.2).  The knob array is never written by the loop, so the
   kernel remains DOANY- and PS-DSWP-parallelizable. *)
let adaptive ?(n = 1_000_000) ?(work = 60_000) () =
  let b = Builder.create "adaptive" in
  Builder.array b "knob" [| work |];
  let i = Builder.induction b ~from:0 ~step:1 in
  let w = Builder.load b "knob" (Const 0) in
  Builder.work b (Reg w);
  let v = Builder.mul b (Reg w) (Const 3) in
  let v2 = Builder.add b (Reg v) (Reg i) in
  let sum = Builder.reduce b Add ~init:(Const 0) (Reg v2) in
  Builder.live_out b sum;
  Builder.finish ~trip:(Loop.Count n) b

(* finegrain: a tiny (2 us) loop body dominated by its sum reduction; at
   high DoP the per-iteration critical section of the unprivatized variant
   becomes the bottleneck — the Section 7.4 ablation kernel. *)
let finegrain ?(n = 100_000) () =
  let b = Builder.create "finegrain" in
  let i = Builder.induction b ~from:0 ~step:1 in
  Builder.work b (Const 2_000);
  let v = Builder.binop b And (Reg i) (Const 1023) in
  let sum = Builder.reduce b Add ~init:(Const 0) (Reg v) in
  Builder.live_out b sum;
  Builder.finish ~trip:(Loop.Count n) b

(* statecarry: several live cross-iteration registers in a short loop; with
   the Section 7.1 optimization off, each iteration pays heap save/restore
   for all of them. *)
let statecarry ?(n = 100_000) () =
  let b = Builder.create "statecarry" in
  let i = Builder.induction b ~from:0 ~step:1 in
  Builder.work b (Const 2_000);
  let a = Builder.phi b ~init:(Const 1) in
  let bb = Builder.phi b ~init:(Const 2) in
  let c = Builder.phi b ~init:(Const 3) in
  let a' = Builder.binop b Rem (Builder.add b (Reg a) (Reg i) |> fun r -> Reg r) (Const 8191) in
  let b' = Builder.binop b Rem (Builder.add b (Reg bb) (Reg a') |> fun r -> Reg r) (Const 8191) in
  let c' = Builder.binop b Rem (Builder.add b (Reg c) (Reg b') |> fun r -> Reg r) (Const 8191) in
  Builder.set_carry b ~phi:a ~carry:a';
  Builder.set_carry b ~phi:bb ~carry:b';
  Builder.set_carry b ~phi:c ~carry:c';
  Builder.live_out b a;
  Builder.live_out b bb;
  Builder.live_out b c;
  Builder.finish ~trip:(Loop.Count n) b
