(** Array-index analysis: the pointer-analysis stand-in for the IR.
    Classifies access indices as affine in an induction variable, constant,
    or unknown, and decides how two accesses to the same array may
    conflict across iterations. *)

open Parcae_ir

type induction_info = {
  ind_phi : Instr.reg;  (** the induction variable (phi destination) *)
  ind_from : int;
  ind_step : int;  (** non-zero *)
  ind_carry : Instr.reg;  (** the register holding i + step *)
}

type index =
  | Affine of { ind : Instr.reg; offset : int }
  | Fixed of int
  | Unknown

val inductions : Loop.t -> induction_info list
(** Recognize induction phis: [i = phi \[c, i +/- const\]]. *)

val classify_index : Loop.t -> induction_info list -> Instr.operand -> index
(** Chase +/- constant chains back to an induction variable or constant. *)

type conflict =
  | No_conflict
  | Same_iteration  (** conflict only within one iteration *)
  | Cross_iteration of int
      (** conflict across iterations at this distance (in iterations) *)
  | May_conflict  (** conservatively: any iterations may conflict *)

val conflict : induction_info list -> index -> index -> conflict
