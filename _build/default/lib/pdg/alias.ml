(* Array-index analysis: the pointer-analysis stand-in for the IR.

   An access index is classified as
   - [Affine (ind, offset)]: a constant offset from a canonical induction
     variable (i, i+1, i-2, ...),
   - [Fixed c]: a compile-time constant, or
   - [Unknown]: anything else.

   Two accesses to the same array with affine indices on the same induction
   variable conflict across iterations only if their offsets differ by a
   multiple of the step; same-offset accesses conflict only within an
   iteration.  Anything involving [Unknown] is conservatively assumed to
   conflict across iterations. *)

open Parcae_ir

type induction_info = {
  ind_phi : Instr.reg;  (* phi destination: the induction variable *)
  ind_from : int;
  ind_step : int;  (* non-zero *)
  ind_carry : Instr.reg;  (* the register holding i + step *)
}

type index = Affine of { ind : Instr.reg; offset : int } | Fixed of int | Unknown

(* Recognize induction phis: i = phi [c, j] where j = i +/- const. *)
let inductions (loop : Loop.t) =
  List.filter_map
    (fun (p : Instr.phi) ->
      match p.Instr.init with
      | Instr.Reg _ -> None
      | Instr.Const from -> (
          let def =
            List.find_opt
              (fun i -> match Instr.defs i with Some d -> d = p.Instr.carry | None -> false)
              loop.Loop.body
          in
          match def with
          | Some (Instr.Binop { op = Instr.Add; a = Instr.Reg r; b = Instr.Const c; _ })
            when r = p.Instr.pdst ->
              Some { ind_phi = p.Instr.pdst; ind_from = from; ind_step = c; ind_carry = p.Instr.carry }
          | Some (Instr.Binop { op = Instr.Add; a = Instr.Const c; b = Instr.Reg r; _ })
            when r = p.Instr.pdst ->
              Some { ind_phi = p.Instr.pdst; ind_from = from; ind_step = c; ind_carry = p.Instr.carry }
          | Some (Instr.Binop { op = Instr.Sub; a = Instr.Reg r; b = Instr.Const c; _ })
            when r = p.Instr.pdst ->
              Some
                { ind_phi = p.Instr.pdst; ind_from = from; ind_step = -c; ind_carry = p.Instr.carry }
          | _ -> None))
    loop.Loop.phis
  |> List.filter (fun i -> i.ind_step <> 0)

(* Classify an index operand by chasing +/- constant chains back to an
   induction variable or a constant. *)
let classify_index (loop : Loop.t) (inds : induction_info list) (idx : Instr.operand) =
  let def_of r =
    List.find_opt (fun i -> match Instr.defs i with Some d -> d = r | None -> false) loop.Loop.body
  in
  let rec chase r offset depth =
    if depth > 16 then Unknown
    else if List.exists (fun ii -> ii.ind_phi = r) inds then Affine { ind = r; offset }
    else begin
      (* The carry register (i + step) is the induction shifted by step. *)
      match List.find_opt (fun ii -> ii.ind_carry = r) inds with
      | Some ii -> Affine { ind = ii.ind_phi; offset = offset + ii.ind_step }
      | None -> (
          match def_of r with
          | Some (Instr.Binop { op = Instr.Add; a = Instr.Reg r'; b = Instr.Const c; _ }) ->
              chase r' (offset + c) (depth + 1)
          | Some (Instr.Binop { op = Instr.Add; a = Instr.Const c; b = Instr.Reg r'; _ }) ->
              chase r' (offset + c) (depth + 1)
          | Some (Instr.Binop { op = Instr.Sub; a = Instr.Reg r'; b = Instr.Const c; _ }) ->
              chase r' (offset - c) (depth + 1)
          | _ -> Unknown)
    end
  in
  match idx with Instr.Const c -> Fixed c | Instr.Reg r -> chase r 0 0

(* How two accesses to the same array may conflict. *)
type conflict =
  | No_conflict
  | Same_iteration  (* conflict only within one iteration *)
  | Cross_iteration of int
      (* the access with the *larger* offset happens in an earlier
         iteration by this many iterations (positive distance) *)
  | May_conflict  (* conservatively: any iterations may conflict *)

let conflict inds a b =
  match (a, b) with
  | Fixed x, Fixed y -> if x = y then Same_iteration else No_conflict
  | Affine { ind = i1; offset = o1 }, Affine { ind = i2; offset = o2 } when i1 = i2 -> (
      match List.find_opt (fun ii -> ii.ind_phi = i1) inds with
      | None -> May_conflict
      | Some ii ->
          let step = ii.ind_step in
          if o1 = o2 then Same_iteration
          else if (o1 - o2) mod step <> 0 then No_conflict
          else Cross_iteration (abs ((o1 - o2) / step)))
  | Affine _, Fixed _ | Fixed _, Affine _ ->
      (* An induction-indexed access hits a fixed cell in at most one
         iteration; treat conservatively as cross-iteration. *)
      May_conflict
  | _ -> May_conflict
