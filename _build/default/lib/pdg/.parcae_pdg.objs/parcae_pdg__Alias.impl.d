lib/pdg/alias.ml: Instr List Loop Parcae_ir
