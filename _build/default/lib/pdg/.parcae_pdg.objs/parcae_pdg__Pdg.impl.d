lib/pdg/pdg.ml: Alias Array Dep Format Hashtbl Instr List Loop Parcae_ir
