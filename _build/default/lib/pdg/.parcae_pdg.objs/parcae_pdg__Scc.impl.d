lib/pdg/scc.ml: Alias Array Dep Format Hashtbl Instr List Loop Parcae_ir Pdg String
