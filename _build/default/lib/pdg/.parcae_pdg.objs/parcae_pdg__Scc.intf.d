lib/pdg/scc.mli: Format Pdg
