lib/pdg/pdg.mli: Alias Dep Format Instr Loop Parcae_ir
