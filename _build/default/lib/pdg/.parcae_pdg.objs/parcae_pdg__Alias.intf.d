lib/pdg/alias.mli: Instr Loop Parcae_ir
