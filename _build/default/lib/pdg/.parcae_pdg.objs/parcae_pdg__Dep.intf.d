lib/pdg/dep.mli:
