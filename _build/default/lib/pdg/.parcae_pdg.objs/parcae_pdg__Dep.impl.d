lib/pdg/dep.ml: Printf
