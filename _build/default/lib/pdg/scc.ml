open Parcae_ir

(* Strongly connected components of the PDG and the DAG_SCC (Section 4.1).

   Each SCC groups instructions that are cyclically dependent and must
   execute together.  An SCC is *parallel-capable* — dynamic instances of
   the corresponding task may run concurrently — when every loop-carried
   dependence internal to it is relaxable (reductions, commutative calls)
   and it contains no loop-exit control; induction cycles are kept
   sequential (they form the cheap master stage that doles out
   iterations). *)

type component = {
  cid : int;
  members : int list;  (* node ids, ascending *)
  parallel : bool;
  mutable weight : float;  (* estimated cycles per iteration *)
}

type t = {
  pdg : Pdg.t;
  comps : component array;  (* in topological order of the condensation *)
  comp_of : int array;  (* node id -> component id *)
}

(* Tarjan's algorithm; self-edges make a singleton cyclic but do not change
   membership. *)
let tarjan n succs =
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let comps = ref [] in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      (succs v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
      in
      comps := pop [] :: !comps
    end
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  (* Tarjan emits components in reverse topological order; [!comps] has the
     last-emitted first, which is topological order of the condensation. *)
  !comps

let build ?(weights : float array option) (pdg : Pdg.t) =
  let n = Pdg.node_count pdg in
  let adj = Array.make n [] in
  List.iter (fun d -> adj.(d.Dep.src) <- d.Dep.dst :: adj.(d.Dep.src)) pdg.Pdg.deps;
  let comp_lists = tarjan n (fun v -> adj.(v)) in
  let comp_of = Array.make n (-1) in
  List.iteri (fun ci members -> List.iter (fun v -> comp_of.(v) <- ci) members) comp_lists;
  let node_weight id =
    match weights with
    | Some w -> w.(id)
    | None -> (
        match pdg.Pdg.nodes.(id) with
        | Loop.Phi_node _ -> 1.0
        | Loop.Instr_node i -> (
            float_of_int (Instr.base_cost i)
            +.
            match i with
            | Instr.Work { amount = Instr.Const c } -> float_of_int c
            | Instr.Work { amount = Instr.Reg _ } -> 1000.0  (* unknown: assume heavy *)
            | _ -> 0.0))
  in
  let is_induction_node id =
    match pdg.Pdg.nodes.(id) with
    | Loop.Phi_node p ->
        List.exists (fun ii -> ii.Alias.ind_phi = p.Instr.pdst) pdg.Pdg.inductions
    | Loop.Instr_node _ -> false
  in
  let comps =
    Array.of_list
      (List.mapi
         (fun ci members ->
           let members = List.sort compare members in
           let internal_carried =
             List.filter
               (fun d ->
                 d.Dep.carried && comp_of.(d.Dep.src) = ci && comp_of.(d.Dep.dst) = ci)
               pdg.Pdg.deps
           in
           let has_break =
             List.exists
               (fun id ->
                 match pdg.Pdg.nodes.(id) with
                 | Loop.Instr_node (Instr.Break_if _) -> true
                 | _ -> false)
               members
           in
           let has_induction = List.exists is_induction_node members in
           let parallel =
             (not has_break) && (not has_induction)
             && List.for_all Dep.is_relaxable internal_carried
           in
           {
             cid = ci;
             members;
             parallel;
             weight = List.fold_left (fun acc id -> acc +. node_weight id) 0.0 members;
           })
         comp_lists)
  in
  { pdg; comps; comp_of }

let component_count t = Array.length t.comps

(* Condensation edges: (src component, dst component) pairs, deduplicated,
   excluding self. *)
let dag_edges t =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun d ->
      let a = t.comp_of.(d.Dep.src) and b = t.comp_of.(d.Dep.dst) in
      if a = b || Hashtbl.mem seen (a, b) then None
      else begin
        Hashtbl.replace seen (a, b) ();
        Some (a, b)
      end)
    t.pdg.Pdg.deps

(* Reachability matrix over components. *)
let reachability t =
  let n = component_count t in
  let reach = Array.make_matrix n n false in
  List.iter (fun (a, b) -> reach.(a).(b) <- true) (dag_edges t);
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      if reach.(i).(k) then
        for j = 0 to n - 1 do
          if reach.(k).(j) then reach.(i).(j) <- true
        done
    done
  done;
  reach

let pp fmt t =
  Array.iter
    (fun c ->
      Format.fprintf fmt "SCC %d (%s, weight %.0f): %s@." c.cid
        (if c.parallel then "par" else "seq")
        c.weight
        (String.concat "," (List.map string_of_int c.members)))
    t.comps
