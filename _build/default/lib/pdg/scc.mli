(** Strongly connected components of the PDG and the DAG_SCC (the paper's
    Section 4.1).  An SCC is parallel-capable — its dynamic instances may
    run concurrently — when every carried dependence internal to it is
    relaxable and it contains no loop-exit control; induction cycles stay
    sequential (they form the cheap master stage). *)

type component = {
  cid : int;
  members : int list;  (** node ids, ascending *)
  parallel : bool;
  mutable weight : float;  (** estimated ns per iteration *)
}

type t = {
  pdg : Pdg.t;
  comps : component array;  (** in topological order of the condensation *)
  comp_of : int array;  (** node id -> component id *)
}

val build : ?weights:float array -> Pdg.t -> t
(** [weights], when given, supplies profiled per-node costs (see
    [Interp.run]'s [profile]); otherwise static estimates are used. *)

val component_count : t -> int

val dag_edges : t -> (int * int) list
(** Condensation edges, deduplicated, self-edges excluded. *)

val reachability : t -> bool array array
(** Transitive closure over components. *)

val pp : Format.formatter -> t -> unit
