lib/nona/doany.mli: Dep Parcae_pdg Pdg
