lib/nona/psdswp.mli: Parcae_pdg Pdg Scc
