lib/nona/psdswp.ml: Array Dep Hashtbl List Parcae_pdg Pdg Scc
