lib/nona/flex.mli: Doacross Externals Hashtbl Instr Loop Mtcg Parcae_core Parcae_ir Parcae_pdg Parcae_sim Pdg
