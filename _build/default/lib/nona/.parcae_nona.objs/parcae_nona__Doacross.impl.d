lib/nona/doacross.ml: Alias Array Dep Hashtbl Instr List Loop Parcae_ir Parcae_pdg Pdg
