lib/nona/compiler.ml: Array Doacross Doany Externals Flex Hashtbl Interp List Loop Mtcg Parcae_core Parcae_ir Parcae_pdg Parcae_runtime Parcae_sim Pdg Psdswp Scc
