lib/nona/doany.ml: Loop Parcae_ir Parcae_pdg Pdg
