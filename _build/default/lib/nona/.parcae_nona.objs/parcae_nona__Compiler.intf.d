lib/nona/compiler.mli: Doacross Flex Interp Loop Mtcg Parcae_core Parcae_ir Parcae_pdg Parcae_runtime Parcae_sim Pdg Scc
