lib/nona/doacross.mli: Instr Parcae_ir Parcae_pdg Pdg
