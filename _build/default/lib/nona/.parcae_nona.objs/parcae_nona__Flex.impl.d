lib/nona/flex.ml: Alias Array Doacross Externals Hashtbl Instr List Loop Mtcg Option Parcae_core Parcae_ir Parcae_pdg Parcae_sim Pdg Printf Psdswp String
