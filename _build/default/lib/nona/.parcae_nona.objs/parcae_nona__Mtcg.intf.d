lib/nona/mtcg.mli: Format Instr Parcae_ir Parcae_pdg Psdswp
