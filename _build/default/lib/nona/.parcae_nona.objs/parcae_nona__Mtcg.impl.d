lib/nona/mtcg.ml: Array Dep Format Hashtbl Instr List Loop Parcae_ir Parcae_pdg Pdg Psdswp String
