open Parcae_pdg
(* Multi-threaded code generation (Section 4.4), adapted to the simulator.

   Given the pipeline stages from the PS-DSWP partitioner, MTCG computes,
   for every ordered stage pair with a dependence between them, the set of
   register values that must be communicated per iteration, and adds
   synchronization-only edges so that every stage is paced by (and receives
   pause/exit signals from) the pipeline — the paper's replication of
   branch conditions and its point-to-point communication channels. *)

open Parcae_ir

type edge = {
  e_from : int;  (* producer stage *)
  e_to : int;  (* consumer stage *)
  e_regs : Instr.reg list;  (* values per iteration, ascending; may be [] *)
}

type pipeline = {
  stages : Psdswp.stage array;
  edges : edge array;
  in_edges : int list array;  (* per stage: edge indexes, by producer order *)
  out_edges : int list array;
}

let build (pdg : Pdg.t) (stages : Psdswp.stage list) =
  let stages = Array.of_list stages in
  let nstages = Array.length stages in
  let stage_of = Hashtbl.create 64 in
  Array.iteri
    (fun si (s : Psdswp.stage) -> List.iter (fun id -> Hashtbl.replace stage_of id si) s.Psdswp.members)
    stages;
  (* Register values crossing stage boundaries: def in stage a, use in
     stage b > a. *)
  let cross : (int * int, Instr.reg list ref) Hashtbl.t = Hashtbl.create 16 in
  let add_cross a b r =
    let key = (a, b) in
    let cell =
      match Hashtbl.find_opt cross key with
      | Some c -> c
      | None ->
          let c = ref [] in
          Hashtbl.replace cross key c;
          c
    in
    if not (List.mem r !cell) then cell := r :: !cell
  in
  let def_stage = Hashtbl.create 32 in
  Array.iteri
    (fun id node ->
      match Loop.node_defs node with
      | Some r -> Hashtbl.replace def_stage r (Hashtbl.find stage_of id)
      | None -> ())
    pdg.Pdg.nodes;
  Array.iteri
    (fun id node ->
      let b = Hashtbl.find stage_of id in
      List.iter
        (fun r ->
          match Hashtbl.find_opt def_stage r with
          | Some a when a <> b -> add_cross a b r
          | _ -> ())
        (Loop.node_uses node))
    pdg.Pdg.nodes;
  (* Synchronization edges for cross-stage memory/control dependencies. *)
  List.iter
    (fun d ->
      let a = Hashtbl.find stage_of d.Dep.src and b = Hashtbl.find stage_of d.Dep.dst in
      if a < b then
        if not (Hashtbl.mem cross (a, b)) then Hashtbl.replace cross (a, b) (ref []))
    pdg.Pdg.deps;
  (* Pacing: every stage after the first must have at least one in-edge so
     the pause/exit protocol reaches it; connect orphans to the master. *)
  for si = 1 to nstages - 1 do
    let has_in = Hashtbl.fold (fun (_, b) _ acc -> acc || b = si) cross false in
    if not has_in then Hashtbl.replace cross (0, si) (ref [])
  done;
  let edges =
    Hashtbl.fold
      (fun (a, b) regs acc -> { e_from = a; e_to = b; e_regs = List.sort compare !regs } :: acc)
      cross []
    |> List.sort (fun x y -> compare (x.e_from, x.e_to) (y.e_from, y.e_to))
    |> Array.of_list
  in
  let in_edges = Array.make nstages [] in
  let out_edges = Array.make nstages [] in
  Array.iteri
    (fun ei e ->
      in_edges.(e.e_to) <- in_edges.(e.e_to) @ [ ei ];
      out_edges.(e.e_from) <- out_edges.(e.e_from) @ [ ei ])
    edges;
  { stages; edges; in_edges; out_edges }

let pp fmt p =
  Array.iteri
    (fun si (s : Psdswp.stage) ->
      Format.fprintf fmt "stage %d (%s, %.0f): nodes %s@." si
        (if s.Psdswp.par then "PAR" else "SEQ")
        s.Psdswp.weight
        (String.concat "," (List.map string_of_int s.Psdswp.members)))
    p.stages;
  Array.iter
    (fun e ->
      Format.fprintf fmt "edge %d->%d regs [%s]@." e.e_from e.e_to
        (String.concat ";" (List.map string_of_int e.e_regs)))
    p.edges
