(* The DOACROSS parallelization — an additional parallelizer demonstrating
   that the framework "can accommodate additional, new transformations"
   (Section 3.2 / 4.2 of the paper).

   DOACROSS distributes iterations round-robin over a team of lanes and
   enforces loop-carried register dependencies point-to-point: the lane
   executing iteration i receives the recurrence values produced by
   iteration i-1 from its ring predecessor, and forwards its own carries to
   the lane that will execute i+1.  The body is split into

   - a *pre* part — instructions that do not (transitively) depend on any
     hard recurrence phi; these execute before the lane waits for its
     predecessor, so the expensive independent work of consecutive
     iterations overlaps; and
   - a *chain* part — the recurrence computation itself, which executes
     between the receive and the forward and bounds the achievable
     speedup (pre_cost / chain_cost lanes, roughly).

   Applicability: a counted loop whose every loop-carried dependence is
   either relaxable (induction / reduction / commutative) or a register
   dependence carried by a phi (the recurrences DOACROSS synchronizes).
   Loops with carried memory dependencies or data-dependent exits are
   rejected.  Nona only emits DOACROSS when DOANY does not apply: with no
   hard recurrences at all, DOANY strictly dominates it. *)

open Parcae_ir
open Parcae_pdg

type plan = {
  hard_phis : Instr.phi list;  (* the recurrences forwarded around the ring *)
  pre : int list;  (* node ids independent of the recurrences, body order *)
  chain : int list;  (* node ids dependent on the recurrences, body order *)
}

let is_relaxed_phi (pdg : Pdg.t) (p : Instr.phi) =
  List.exists (fun ii -> ii.Alias.ind_phi = p.Instr.pdst) pdg.Pdg.inductions
  || List.exists (fun r -> r.Pdg.red_phi = p.Instr.pdst) pdg.Pdg.reductions

let hard_phis (pdg : Pdg.t) =
  List.filter (fun p -> not (is_relaxed_phi pdg p)) pdg.Pdg.loop.Loop.phis

let applicable (pdg : Pdg.t) =
  (match pdg.Pdg.loop.Loop.trip with Loop.Count _ -> true | Loop.While -> false)
  && List.for_all
       (fun d ->
         Dep.is_relaxable d
         || (d.Dep.kind = Dep.Reg_data && d.Dep.carried && d.Dep.dst < pdg.Pdg.nphis))
       (Pdg.carried pdg)
  && hard_phis pdg <> []

(* Split the body into pre and chain parts.  A node is in the chain iff it
   transitively uses the value of a hard phi within the iteration. *)
let make_plan (pdg : Pdg.t) =
  let phis = hard_phis pdg in
  let n = Pdg.node_count pdg in
  let tainted = Array.make n false in
  (* Mark the hard phi nodes. *)
  List.iteri
    (fun pi (p : Instr.phi) ->
      if List.exists (fun (h : Instr.phi) -> h.Instr.pdst = p.Instr.pdst) phis then
        tainted.(pi) <- true)
    pdg.Pdg.loop.Loop.phis;
  (* Propagate taint along intra-iteration register uses, in body order
     (single-assignment makes one forward pass sufficient). *)
  let def_node = Hashtbl.create 16 in
  Array.iteri
    (fun id node ->
      match Loop.node_defs node with Some r -> Hashtbl.replace def_node r id | None -> ())
    pdg.Pdg.nodes;
  Array.iteri
    (fun id node ->
      if id >= pdg.Pdg.nphis then begin
        (* Calls and reduction combines must never run before the lane has
           committed to the iteration (re-executing a partially run
           iteration after a pause would duplicate their side effects), so
           they join the chain. *)
        (match node with Loop.Instr_node (Instr.Call _) -> tainted.(id) <- true | _ -> ());
        if List.exists (fun r -> r.Pdg.red_combine = id) pdg.Pdg.reductions then
          tainted.(id) <- true;
        let uses = Loop.node_uses node in
        if
          List.exists
            (fun r ->
              match Hashtbl.find_opt def_node r with Some d -> tainted.(d) | None -> false)
            uses
        then tainted.(id) <- true
      end)
    pdg.Pdg.nodes;
  let body_ids = List.init (n - pdg.Pdg.nphis) (fun i -> pdg.Pdg.nphis + i) in
  {
    hard_phis = phis;
    pre = List.filter (fun id -> not tainted.(id)) body_ids;
    chain = List.filter (fun id -> tainted.(id)) body_ids;
  }
