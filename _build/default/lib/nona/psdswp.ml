open Parcae_pdg
(* The PS-DSWP partitioner (Section 4.3.2).

   Starting from the DAG_SCC, the partitioner coalesces SCCs into pipeline
   stages while maintaining Invariant 4.3.1:
   1. every SCC lands in exactly one stage;
   2. every cross-stage dependence flows forward in the pipeline;
   3. parallel SCCs are only coalesced when no dependency chain between
      them passes through an SCC outside the coalesced set.

   Following the paper's algorithm, it picks the biggest (by estimated
   cycles) compatible set of parallel-capable SCCs as the main parallel
   stage, splits the remaining SCCs into the predecessor graph (those that
   reach the parallel stage) and the successor graph, and recurses on both
   sides to discover further parallel stages. *)

type stage = {
  members : int list;  (* node ids, ascending *)
  par : bool;
  weight : float;
}

(* Greedily grow the heaviest compatible set of parallel components.
   [reach] is the component reachability matrix; [inside] restricts the
   search to a sub-DAG (closed under paths, see the recursion argument in
   the compiler design notes). *)
let best_parallel_set (scc : Scc.t) reach inside =
  let candidates =
    Array.to_list scc.Scc.comps
    |> List.filter (fun c -> inside c.Scc.cid && c.Scc.parallel)
    |> List.sort (fun a b -> compare b.Scc.weight a.Scc.weight)
  in
  match candidates with
  | [] -> []
  | first :: rest ->
      let chosen = ref [ first.Scc.cid ] in
      let compatible t =
        (* No path between t and a chosen member through a component
           outside chosen + t. *)
        let member x = List.mem x !chosen || x = t in
        List.for_all
          (fun m ->
            let bad =
              Array.to_list scc.Scc.comps
              |> List.exists (fun x ->
                     let x = x.Scc.cid in
                     (not (member x))
                     && ((reach.(m).(x) && reach.(x).(t)) || (reach.(t).(x) && reach.(x).(m))))
            in
            not bad)
          !chosen
      in
      List.iter (fun c -> if compatible c.Scc.cid then chosen := c.Scc.cid :: !chosen) rest;
      !chosen

(* Partition the components selected by [inside] into an ordered stage
   list.  [min_par_weight] is the SCCmin-style threshold (Section 4.3.2):
   a candidate parallel stage lighter than this fraction of the *whole
   loop* is not worth its communication and folds into a sequential
   stage. *)
let rec partition_sub (scc : Scc.t) reach inside ~depth ~min_par_weight =
  let comps_in = Array.to_list scc.Scc.comps |> List.filter (fun c -> inside c.Scc.cid) in
  if comps_in = [] then []
  else begin
    let total = List.fold_left (fun acc c -> acc +. c.Scc.weight) 0.0 comps_in in
    let seq_stage () =
      let members = List.concat_map (fun c -> c.Scc.members) comps_in |> List.sort compare in
      [ { members; par = false; weight = total } ]
    in
    if depth <= 0 then seq_stage ()
    else begin
      match best_parallel_set scc reach inside with
      | [] -> seq_stage ()
      | set ->
          let set_weight =
            List.fold_left (fun acc cid -> acc +. scc.Scc.comps.(cid).Scc.weight) 0.0 set
          in
          if set_weight < min_par_weight then seq_stage ()
          else begin
            let in_set cid = List.mem cid set in
            let reaches_set cid =
              (not (in_set cid)) && inside cid && List.exists (fun m -> reach.(cid).(m)) set
            in
            let rest cid = inside cid && (not (in_set cid)) && not (reaches_set cid) in
            let par_members =
              List.concat_map (fun cid -> scc.Scc.comps.(cid).Scc.members) set
              |> List.sort compare
            in
            let par_stage = { members = par_members; par = true; weight = set_weight } in
            partition_sub scc reach reaches_set ~depth:(depth - 1) ~min_par_weight
            @ [ par_stage ]
            @ partition_sub scc reach rest ~depth:(depth - 1) ~min_par_weight
          end
    end
  end

(* Main entry: the ordered pipeline stages, or [None] when PS-DSWP offers
   nothing over sequential execution (no parallel-capable SCC). *)
let partition ?(depth = 2) (scc : Scc.t) =
  let reach = Scc.reachability scc in
  let total = Array.fold_left (fun acc c -> acc +. c.Scc.weight) 0.0 scc.Scc.comps in
  let min_par_weight = 0.05 *. total in
  let stages = partition_sub scc reach (fun _ -> true) ~depth ~min_par_weight in
  let has_parallel = List.exists (fun s -> s.par) stages in
  if (not has_parallel) || List.length stages < 1 then None
  else Some stages

(* Check Invariant 4.3.1 over a stage list; used by tests. *)
let check_invariant (pdg : Pdg.t) stages =
  let stage_of = Hashtbl.create 64 in
  List.iteri (fun si s -> List.iter (fun id -> Hashtbl.replace stage_of id si) s.members) stages;
  (* 1. every node in exactly one stage *)
  let covered = Hashtbl.length stage_of = Pdg.node_count pdg in
  (* 2. cross-stage dependencies flow forward *)
  let forward =
    List.for_all
      (fun d ->
        let a = Hashtbl.find stage_of d.Dep.src and b = Hashtbl.find stage_of d.Dep.dst in
        a <= b)
      pdg.Pdg.deps
  in
  covered && forward
