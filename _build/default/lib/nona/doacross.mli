(** The DOACROSS parallelization — an additional parallelizer demonstrating
    the framework's extensibility (the paper's Sections 3.2 / 4.2).

    Iterations are distributed round-robin over a team of lanes; the hard
    loop-carried recurrences are enforced point-to-point: the lane
    executing iteration i receives the recurrence values of i-1 from its
    ring predecessor and forwards its own carries to the lane executing
    i+1.  The body splits into a *pre* part independent of the recurrences
    (overlapping across lanes) and the recurrence *chain* (whose length
    bounds the speedup). *)

open Parcae_ir
open Parcae_pdg

type plan = {
  hard_phis : Instr.phi list;  (** the recurrences forwarded around the ring *)
  pre : int list;  (** node ids independent of the recurrences, body order *)
  chain : int list;  (** node ids dependent on them (plus calls and
                         reduction combines, whose side effects must not
                         re-execute after a pause) *)
}

val hard_phis : Pdg.t -> Instr.phi list

val applicable : Pdg.t -> bool
(** A counted loop whose every carried dependence is relaxable or a
    phi-carried register dependence, with at least one hard recurrence. *)

val make_plan : Pdg.t -> plan
