(** The PS-DSWP partitioner (the paper's Section 4.3.2): coalesces SCCs
    into pipeline stages while maintaining Invariant 4.3.1 (every SCC in
    exactly one stage; cross-stage dependencies flow forward; parallel
    SCCs only coalesce when no dependency chain between them passes
    through an outside SCC).  The biggest compatible set of
    parallel-capable SCCs becomes the main parallel stage; the remaining
    SCCs split into predecessor and successor graphs, recursively. *)

open Parcae_pdg

type stage = {
  members : int list;  (** node ids, ascending *)
  par : bool;
  weight : float;
}

val best_parallel_set : Scc.t -> bool array array -> (int -> bool) -> int list
(** Greedily grow the heaviest compatible set of parallel components
    within the sub-DAG selected by the predicate. *)

val partition : ?depth:int -> Scc.t -> stage list option
(** The ordered pipeline stages, or [None] when PS-DSWP offers nothing
    over sequential execution. *)

val check_invariant : Pdg.t -> stage list -> bool
(** Invariant 4.3.1 over a stage list (used by tests). *)
