(** Multi-threaded code generation (the paper's Section 4.4): computes,
    for every ordered stage pair with a dependence between them, the
    register values communicated per iteration, and adds
    synchronization-only edges so every stage is paced by (and receives
    pause/exit signals from) the pipeline. *)

open Parcae_ir

type edge = {
  e_from : int;  (** producer stage *)
  e_to : int;  (** consumer stage *)
  e_regs : Instr.reg list;  (** values per iteration, ascending; may be [] *)
}

type pipeline = {
  stages : Psdswp.stage array;
  edges : edge array;
  in_edges : int list array;  (** per stage: edge indexes *)
  out_edges : int list array;
}

val build : Parcae_pdg.Pdg.t -> Psdswp.stage list -> pipeline
val pp : Format.formatter -> pipeline -> unit
