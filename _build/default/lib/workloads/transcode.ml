(* x264 video transcoding (Table 8.2; Figures 2.3, 2.4, 8.1).

   Structure: outer DOALL over transcoding requests; per video, pipeline
   parallelism across the frames: each inner thread encodes frames
   concurrently, with inter-frame dependencies costing communication that
   grows with the team size.  We model the frame team as a DOALL over
   frames whose per-frame cost inflates by (1 + beta * (l - 1)).

   Calibration: 60 frames of 28 ms give a ~1.68 s sequential video; with
   beta = 0.035 an inner team of 8 reaches ~6.4x intra-video speedup (the
   paper reports a maximum of 6.3x at 8 threads, so dPmax = 8), and
   efficiency decreases smoothly with team size — so the throughput-maximal
   configuration under heavy load turns inner parallelism off, producing
   the crossover near load 0.9 in Figure 2.4(b), while mid-load optima use
   intermediate <k, l> splits as in Figure 2.4(c). *)

let frames = 60
let frame_ns = 28_000_000
let beta = 0.035
let dpmax = 8

let kind = Two_level.Doall { chunks = frames; chunk_ns = frame_ns; serial_ns = 0; beta }

let make ?(budget = 24) eng = Two_level.make ~name:"x264" ~kind ~dpmax ~budget eng

(* The two static configurations Figure 2.4 compares on the 24-thread
   platform. *)
let static_outer_name = "<(24,DOALL),(1,SEQ)>"
let static_inner_name = "<(3,DOALL),(8,PIPE)>"
