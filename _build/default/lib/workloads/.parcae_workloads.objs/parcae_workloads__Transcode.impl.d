lib/workloads/transcode.ml: Two_level
