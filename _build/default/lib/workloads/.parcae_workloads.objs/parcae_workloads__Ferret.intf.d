lib/workloads/ferret.mli: App Flat_pipeline Parcae_sim
