lib/workloads/app.ml: Float List Metrics Parcae_core Parcae_sim Printf Request String
