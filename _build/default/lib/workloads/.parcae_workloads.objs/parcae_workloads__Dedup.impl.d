lib/workloads/dedup.ml: Flat_pipeline
