lib/workloads/swaptions.ml: Two_level
