lib/workloads/experiments.ml: App Load_gen Metrics Parcae_core Parcae_runtime Parcae_sim Parcae_util
