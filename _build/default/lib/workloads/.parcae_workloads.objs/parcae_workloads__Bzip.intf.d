lib/workloads/bzip.mli: App Parcae_sim Two_level
