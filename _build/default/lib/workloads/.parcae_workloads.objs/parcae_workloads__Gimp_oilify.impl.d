lib/workloads/gimp_oilify.ml: Two_level
