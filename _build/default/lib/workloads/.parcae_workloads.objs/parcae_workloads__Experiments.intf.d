lib/workloads/experiments.mli: App Engine Machine Parcae_core Parcae_runtime Parcae_sim Parcae_util
