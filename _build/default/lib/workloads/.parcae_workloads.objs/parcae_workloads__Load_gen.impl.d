lib/workloads/load_gen.ml: Float Metrics Parcae_core Parcae_sim Parcae_util Request
