lib/workloads/request.mli:
