lib/workloads/two_level.mli: App Parcae_core Parcae_sim
