lib/workloads/metrics.ml: Array List Parcae_sim Parcae_util Request
