lib/workloads/dedup.mli: App Flat_pipeline Parcae_sim
