lib/workloads/metrics.mli: Parcae_sim Parcae_util Request
