lib/workloads/swaptions.mli: App Parcae_sim Two_level
