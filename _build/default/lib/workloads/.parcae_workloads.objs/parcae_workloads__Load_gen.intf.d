lib/workloads/load_gen.mli: Chan Engine Metrics Parcae_core Parcae_sim Parcae_util Request
