lib/workloads/flat_pipeline.mli: App Parcae_sim
