lib/workloads/transcode.mli: App Parcae_sim Two_level
