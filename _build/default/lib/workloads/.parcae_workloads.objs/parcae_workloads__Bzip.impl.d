lib/workloads/bzip.ml: Two_level
