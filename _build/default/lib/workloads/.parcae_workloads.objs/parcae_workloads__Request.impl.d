lib/workloads/request.ml: Float
