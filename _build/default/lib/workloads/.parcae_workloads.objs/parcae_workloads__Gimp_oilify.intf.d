lib/workloads/gimp_oilify.mli: App Parcae_sim Two_level
