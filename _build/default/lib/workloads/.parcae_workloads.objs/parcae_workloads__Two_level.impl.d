lib/workloads/two_level.ml: App Array Float List Metrics Parcae_core Parcae_runtime Parcae_sim Printf Request
