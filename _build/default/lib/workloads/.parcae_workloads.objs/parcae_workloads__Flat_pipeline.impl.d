lib/workloads/flat_pipeline.ml: App Array List Metrics Parcae_core Parcae_sim Printf Request
