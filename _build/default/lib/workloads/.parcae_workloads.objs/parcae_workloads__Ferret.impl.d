lib/workloads/ferret.ml: Flat_pipeline
