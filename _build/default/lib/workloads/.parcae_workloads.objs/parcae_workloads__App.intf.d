lib/workloads/app.mli: Metrics Parcae_core Parcae_sim Request
