(** A unit of server work: one video to transcode, one query to answer.
    Carries its arrival time so completion code can compute the end-user
    response time (the paper's Equation 2.1). *)

type t = {
  id : int;
  arrival_ns : int;  (** virtual time the request entered the work queue *)
  scale : float;  (** per-request work multiplier, ~1.0 *)
  mutable start_ns : int;  (** time processing began; -1 until dequeued *)
}

val create : id:int -> arrival_ns:int -> scale:float -> t

val note_start : t -> now:int -> unit
(** Stamp the moment processing begins (idempotent). *)

val cost : t -> int -> int
(** Scale an integer cost by the request's size factor. *)
