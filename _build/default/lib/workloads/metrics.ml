(* Response-time and throughput bookkeeping for the server workloads. *)

module Engine = Parcae_sim.Engine
module Series = Parcae_util.Series
module Stats = Parcae_util.Stats

type t = {
  eng : Engine.t;
  mutable responses : float list;  (* seconds, newest first *)
  mutable exec_times : float list;  (* seconds of processing (no queue wait) *)
  mutable completed : int;
  mutable submitted : int;
  mutable first_completion_ns : int;
  mutable last_completion_ns : int;
  throughput_series : Series.t;  (* optional live samples *)
}

let create eng =
  {
    eng;
    responses = [];
    exec_times = [];
    completed = 0;
    submitted = 0;
    first_completion_ns = -1;
    last_completion_ns = -1;
    throughput_series = Series.create "completions";
  }

let submitted t = t.submitted
let completed t = t.completed
let note_submit t = t.submitted <- t.submitted + 1

(* Record the completion of [req] at the current virtual time. *)
let note_complete t (req : Request.t) =
  let now = Engine.time t.eng in
  let resp = Engine.seconds_of_ns (now - req.Request.arrival_ns) in
  t.responses <- resp :: t.responses;
  if req.Request.start_ns >= 0 then
    t.exec_times <- Engine.seconds_of_ns (now - req.Request.start_ns) :: t.exec_times;
  t.completed <- t.completed + 1;
  if t.first_completion_ns < 0 then t.first_completion_ns <- now;
  t.last_completion_ns <- now

let responses t = Array.of_list (List.rev t.responses)
let exec_times t = Array.of_list (List.rev t.exec_times)

(* Mean per-request execution time (T_exec of Equation 2.1). *)
let mean_exec t = match t.exec_times with [] -> nan | _ -> Stats.mean (exec_times t)

let mean_response t =
  match t.responses with [] -> nan | _ -> Stats.mean (responses t)

let p95_response t =
  match t.responses with [] -> nan | _ -> Stats.percentile 95.0 (responses t)

(* Sustained completion throughput in requests/second, measured from first
   to last completion (robust to warm-up). *)
let throughput t =
  if t.completed < 2 then 0.0
  else begin
    let span = t.last_completion_ns - t.first_completion_ns in
    if span <= 0 then 0.0
    else float_of_int (t.completed - 1) /. Engine.seconds_of_ns span
  end

let throughput_series t = t.throughput_series

let sample_throughput t ~window_completed ~window_ns =
  if window_ns > 0 then
    Series.add t.throughput_series
      ~time:(Engine.seconds_of_ns (Engine.time t.eng))
      ~value:(float_of_int window_completed /. Engine.seconds_of_ns window_ns)
