(* bzip: block data compression (Table 8.2; Figure 8.3).

   Structure: outer DOALL over compression requests; per file, a
   read -> compress -> write pipeline over blocks.

   Calibration: 50 blocks with read = write = 2 ms and compress = 8 ms give
   a 0.6 s sequential request.  A pipeline needs at least 3 threads, and at
   l = 3 (compress DoP 1) the speedup is only 12/8 = 1.5 (efficiency 0.5);
   l = 4 reaches 3x.  This reproduces the paper's observation that the
   minimum inner DoP at which bzip obtains speedup is four — which starves
   WQ-Linear of useful intermediate configurations and makes it perform no
   better than WQT-H (Section 8.2.1). *)

let blocks = 50
let read_ns = 2_000_000
let compress_ns = 8_000_000
let write_ns = 2_000_000
let dpmax = 6

let kind = Two_level.Pipe { items = blocks; stage_ns = [| read_ns; compress_ns; write_ns |] }

let make ?(budget = 24) eng = Two_level.make ~name:"bzip" ~kind ~dpmax ~budget eng

let static_outer_name = "<(24,DOALL),(1,SEQ)>"
let static_inner_name = "<(4,DOALL),(6,PIPE)>"
