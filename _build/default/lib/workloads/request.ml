(* A unit of server work: one video to transcode, one query to answer...
   Requests carry their arrival time so completion code can compute the
   end-user response time (Equation 2.1), and a size scale factor so
   workloads have realistic per-request variation. *)

type t = {
  id : int;
  arrival_ns : int;  (* virtual time the request entered the work queue *)
  scale : float;  (* per-request work multiplier, ~1.0 *)
  mutable start_ns : int;  (* time processing began; -1 until dequeued *)
}

let create ~id ~arrival_ns ~scale = { id; arrival_ns; scale; start_ns = -1 }

(* Stamp the moment processing begins (idempotent). *)
let note_start t ~now = if t.start_ns < 0 then t.start_ns <- now

(* Scale an integer cost by the request's size factor. *)
let cost t base = int_of_float (Float.round (float_of_int base *. t.scale))
