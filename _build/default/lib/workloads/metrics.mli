(** Response-time and throughput bookkeeping for the server workloads. *)

type t

val create : Parcae_sim.Engine.t -> t

val submitted : t -> int
val completed : t -> int

val note_submit : t -> unit

val note_complete : t -> Request.t -> unit
(** Record the completion of a request at the current virtual time:
    updates the response-time and execution-time samples. *)

val responses : t -> float array
(** All response times so far, seconds, in completion order. *)

val exec_times : t -> float array
(** All execution times (processing only, no queue wait). *)

val mean_response : t -> float
val p95_response : t -> float

val mean_exec : t -> float
(** Mean per-request execution time (T_exec of Equation 2.1). *)

val throughput : t -> float
(** Sustained completion throughput, requests/second, first to last
    completion. *)

val throughput_series : t -> Parcae_util.Series.t

val sample_throughput : t -> window_completed:int -> window_ns:int -> unit
(** Append a live throughput sample to {!throughput_series}. *)
