(* swaptions: option pricing via Monte Carlo simulation (Table 8.2;
   Figure 8.2).

   Structure: outer DOALL over pricing requests; per request, a DOALL over
   simulation chunks with a serial reduction update per chunk.

   Calibration: 200 chunks of 7 ms parallel + 0.6 ms serial work give a
   ~1.5 s sequential request.  The ~8% serial fraction caps the inner
   speedup per Amdahl (≈4.9x at 8 threads, efficiency ~0.6; efficiency
   falls through 0.5 soon after), matching the paper's choice of
   <(3, DOALL), (8, DOALL)> as the latency-optimized static
   configuration. *)

let chunks = 200
let chunk_ns = 7_000_000
let serial_ns = 600_000
let dpmax = 8

let kind = Two_level.Doall { chunks; chunk_ns; serial_ns; beta = 0.01 }

let make ?(budget = 24) eng = Two_level.make ~name:"swaptions" ~kind ~dpmax ~budget eng

let static_outer_name = "<(24,DOALL),(1,SEQ)>"
let static_inner_name = "<(3,DOALL),(8,DOALL)>"
