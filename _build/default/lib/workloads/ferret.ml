(* ferret: image search engine (Table 8.2; Figures 6.2, 8.5-8.7,
   Table 8.5).

   Pipeline: load -> seg -> extract -> vec -> rank -> out, with the four
   middle stages parallel and rank dominating (Figure 6.2(a)).  The fused
   scheme collapses seg/extract/vec/rank into one "combined" parallel stage
   (Figure 6.2(b)).

   Calibration: stage costs (1.5, 3, 2, 12) ms against 0.3 ms sequential
   ends make the even static distribution (6 threads per stage) rank-bound
   at 12/6 = 2 ms per query, while a throughput-proportional allocation
   (TBF) shifts threads to rank, roughly doubling throughput; fusion
   additionally removes three channel hops per query.  The moderate
   oversubscription sensitivity (alpha) lets the Pthreads-OS configuration
   still profit from oversubscription, as the paper observes for ferret
   (2.12x) but not for the more memory-bound dedup. *)

let stages =
  [
    Flat_pipeline.spec ~name:"load" ~cost:300_000 ~par:false;
    Flat_pipeline.spec ~name:"seg" ~cost:1_500_000 ~par:true;
    Flat_pipeline.spec ~name:"extract" ~cost:3_000_000 ~par:true;
    Flat_pipeline.spec ~name:"vec" ~cost:2_000_000 ~par:true;
    Flat_pipeline.spec ~name:"rank" ~cost:12_000_000 ~par:true;
    Flat_pipeline.spec ~name:"out" ~cost:300_000 ~par:false;
  ]

let alpha = 0.065

let make ?(budget = 24) eng = Flat_pipeline.make ~alpha ~name:"ferret" ~stages ~budget eng
