(* dedup: data deduplication (Table 8.2; Table 8.5).

   Pipeline: fragment -> chunk -> hash -> compress -> write, with the three
   middle stages parallel and compress dominating.

   Calibration: dedup is memory-bandwidth bound, so its oversubscription
   sensitivity (alpha) is high — with a thread pool of 24 per stage the
   cache pollution and context-switch churn erase the benefit, reproducing
   the paper's Pthreads-OS result of 0.89x (no improvement over the static
   even distribution).  Coordinated allocation (TBF) moves threads to
   compress and reaches ~2.4x. *)

let stages =
  [
    Flat_pipeline.spec ~name:"fragment" ~cost:500_000 ~par:false;
    Flat_pipeline.spec ~name:"chunk" ~cost:1_000_000 ~par:true;
    Flat_pipeline.spec ~name:"hash" ~cost:2_000_000 ~par:true;
    Flat_pipeline.spec ~name:"compress" ~cost:16_000_000 ~par:true;
    Flat_pipeline.spec ~name:"write" ~cost:900_000 ~par:false;
  ]

let alpha = 0.85

let make ?(budget = 24) eng = Flat_pipeline.make ~alpha ~name:"dedup" ~stages ~budget eng
