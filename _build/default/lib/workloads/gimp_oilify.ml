(* gimp: image editing with the oilify plugin (Table 8.2; Figure 8.4).

   Structure: outer DOALL over editing requests; per image, a DOALL over
   tile chunks.  Oilify parallelizes well (little serial work per tile), so
   the inner loop scales further than swaptions, but per-tile accumulation
   still costs a short critical section.

   Calibration: 48 tiles of 35 ms with a 1 ms serial portion give a ~1.7 s
   sequential request with high inner efficiency at 8 threads, matching the
   paper's <(3, DOALL), (8, DOALL)> static choice. *)

let tiles = 48
let tile_ns = 35_000_000
let serial_ns = 1_000_000
let dpmax = 8

let kind = Two_level.Doall { chunks = tiles; chunk_ns = tile_ns; serial_ns; beta = 0.01 }

let make ?(budget = 24) eng = Two_level.make ~name:"gimp" ~kind ~dpmax ~budget eng

let static_outer_name = "<(24,DOALL),(1,SEQ)>"
let static_inner_name = "<(3,DOALL),(8,DOALL)>"
