(* Mutual exclusion between simulated threads.  DOANY-parallelized loops use
   locks to guard critical sections around commutative operations; the
   [lock_op] cost plus queueing delay under contention is what makes
   fine-grained critical sections a measurable overhead (Section 7.4). *)

type t = {
  name : string;
  mutable held_by : Engine.thread option;
  available : Engine.cond;
  op_cost : int;
  mutable acquisitions : int;
  mutable contended : int;  (* acquisitions that had to wait *)
}

let create ?(op_cost = -1) name =
  {
    name;
    held_by = None;
    available = Engine.cond_create ();
    op_cost;
    acquisitions = 0;
    contended = 0;
  }

let cost l = if l.op_cost >= 0 then l.op_cost else (Engine.machine (Engine.engine ())).Machine.lock_op

let acquire l =
  Engine.compute (cost l);
  let me = Engine.self () in
  let waited = ref false in
  let rec loop () =
    match l.held_by with
    | None ->
        l.held_by <- Some me;
        l.acquisitions <- l.acquisitions + 1;
        if !waited then l.contended <- l.contended + 1
    | Some owner when owner == me -> invalid_arg (l.name ^ ": recursive acquire")
    | Some _ ->
        waited := true;
        Engine.wait_on l.available;
        loop ()
  in
  loop ()

let release l =
  (match l.held_by with
  | Some owner when owner == Engine.self () -> ()
  | _ -> invalid_arg (l.name ^ ": release by non-owner"));
  l.held_by <- None;
  Engine.signal l.available

(* Run [f] with the lock held; always releases, even on exception. *)
let with_lock l f =
  acquire l;
  match f () with
  | v ->
      release l;
      v
  | exception e ->
      release l;
      raise e

let acquisitions l = l.acquisitions
let contended l = l.contended
