(* Reusable synchronization barrier.  Morta's unoptimized pause protocol
   gathers all worker threads of a region at a barrier before reconfiguring
   (Section 4.5.1); the time fast threads spend here is the "barrier wait"
   overhead that Section 7.2 eliminates. *)

type t = {
  name : string;
  mutable parties : int;
  mutable arrived : int;
  mutable generation : int;
  released : Engine.cond;
  mutable total_wait_ns : int;  (* aggregate time threads spent waiting *)
}

let create ~parties name =
  if parties <= 0 then invalid_arg "Barrier.create: parties must be positive";
  { name; parties; arrived = 0; generation = 0; released = Engine.cond_create (); total_wait_ns = 0 }

(* Block until [parties] threads have arrived.  Returns [true] for the last
   thread to arrive (the "serial" thread, by analogy with pthread barriers). *)
let wait b =
  let t0 = Engine.now () in
  let gen = b.generation in
  b.arrived <- b.arrived + 1;
  if b.arrived >= b.parties then begin
    b.arrived <- 0;
    b.generation <- b.generation + 1;
    Engine.broadcast b.released;
    true
  end
  else begin
    while b.generation = gen do
      Engine.wait_on b.released
    done;
    b.total_wait_ns <- b.total_wait_ns + (Engine.now () - t0);
    false
  end

let total_wait_ns b = b.total_wait_ns
let parties b = b.parties
