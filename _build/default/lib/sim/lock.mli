(** Mutual exclusion between simulated threads.

    DOANY-parallelized loops guard commutative operations with these
    locks; the [lock_op] cost plus queueing delay under contention is what
    makes fine-grained critical sections a measurable overhead
    (Section 7.4 of the paper). *)

type t

val create : ?op_cost:int -> string -> t

val acquire : t -> unit
(** Block until the lock is held by the calling thread.
    @raise Invalid_argument on recursive acquisition. *)

val release : t -> unit
(** @raise Invalid_argument if the caller does not hold the lock. *)

val with_lock : t -> (unit -> 'a) -> 'a
(** Run the function with the lock held; always releases, even on
    exception. *)

val acquisitions : t -> int
(** Total successful acquisitions. *)

val contended : t -> int
(** Acquisitions that had to wait. *)
