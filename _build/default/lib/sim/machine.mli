(** Platform models (Table 8.1 of the paper).

    All times are nanoseconds of virtual time.  The cost constants set
    realistic orders of magnitude so that the relative effects the paper
    measures — synchronization overhead eroding parallel efficiency,
    context-switch cost under oversubscription, negligible monitoring-hook
    cost — are present in the simulation. *)

type t = {
  name : string;  (** human-readable platform name *)
  cores : int;  (** number of hardware threads *)
  ghz : float;  (** clock speed, used only for reporting *)
  time_slice : int;  (** OS scheduler quantum, ns *)
  ctx_switch : int;  (** context-switch penalty, ns *)
  chan_op : int;  (** cost of one channel send/recv, ns *)
  lock_op : int;  (** cost of an uncontended lock acquire/release pair, ns *)
  hook : int;  (** cost of one Decima begin/end hook (rdtsc), ns *)
  idle_power : float;  (** platform power with all cores idle, watts *)
  core_power : float;  (** additional power per busy core, watts *)
}

val xeon_e5310 : t
(** Platform 1: Intel Xeon E5310, 8 hardware threads at 1.60 GHz. *)

val xeon_x7460 : t
(** Platform 2: Intel Xeon X7460, 24 hardware threads at 2.66 GHz — the
    machine used for the paper's load-sweep experiments. *)

val test_machine : ?cores:int -> unit -> t
(** A tiny machine for unit tests: cheap costs, short scheduler quanta so
    preemption paths are exercised quickly. *)

val power : t -> busy:int -> float
(** Instantaneous platform power draw with [busy] cores active. *)

val peak_power : t -> float
(** Power with every core busy. *)

val pp : Format.formatter -> t -> unit
