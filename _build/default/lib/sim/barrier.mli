(** Reusable synchronization barrier.

    Morta's pause protocol gathers all worker threads of a region at a
    barrier before reconfiguring (Section 4.5.1 of the paper); the time
    fast threads spend here is the "barrier wait" overhead Chapter 7
    analyses. *)

type t

val create : parties:int -> string -> t
(** @raise Invalid_argument if [parties <= 0]. *)

val wait : t -> bool
(** Block until [parties] threads have arrived.  Returns [true] for the
    last thread to arrive (the "serial" thread). *)

val total_wait_ns : t -> int
(** Aggregate virtual time threads have spent waiting at this barrier. *)

val parties : t -> int
