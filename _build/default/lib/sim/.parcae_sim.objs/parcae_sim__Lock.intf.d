lib/sim/lock.mli:
