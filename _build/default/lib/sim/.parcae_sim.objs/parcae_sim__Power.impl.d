lib/sim/power.ml: Engine
