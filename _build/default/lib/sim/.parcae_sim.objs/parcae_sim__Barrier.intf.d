lib/sim/barrier.mli:
