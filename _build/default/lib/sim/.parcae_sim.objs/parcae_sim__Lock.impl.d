lib/sim/lock.ml: Engine Machine
