lib/sim/chan.mli:
