lib/sim/machine.mli: Format
