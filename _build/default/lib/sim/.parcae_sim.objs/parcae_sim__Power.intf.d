lib/sim/power.mli: Engine
