lib/sim/chan.ml: Engine Machine Queue
