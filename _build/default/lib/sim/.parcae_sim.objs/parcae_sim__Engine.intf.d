lib/sim/engine.mli: Machine
