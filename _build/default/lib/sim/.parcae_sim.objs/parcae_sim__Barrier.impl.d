lib/sim/barrier.ml: Engine
