lib/sim/machine.ml: Format Printf
