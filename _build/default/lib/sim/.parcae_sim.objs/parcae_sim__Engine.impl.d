lib/sim/engine.ml: Effect List Machine Parcae_util Printf Queue
