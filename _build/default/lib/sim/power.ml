(* Power sensor with a limited sampling rate, modelling the AP7892 power
   distribution unit the paper measures with (Section 8.2.3: 13 samples per
   minute).  The TPC mechanism reads this sensor; its coarse sampling is what
   limits how quickly power overshoot can be detected, reproducing the
   transients in Figure 8.7. *)

type t = {
  eng : Engine.t;
  period_ns : int;  (* minimum time between fresh samples *)
  mutable last_sample_t : int;
  mutable last_value : float;
}

(* The paper's PDU samples 13 times per minute: one sample every ~4.6 s. *)
let ap7892_period_ns = 60_000_000_000 / 13

let create ?(period_ns = ap7892_period_ns) eng =
  (* The negative initial timestamp guarantees the first read resamples. *)
  { eng; period_ns; last_sample_t = -period_ns; last_value = Engine.instant_power eng }

(* Read the sensor.  Returns the cached value unless a full sampling period
   has elapsed, in which case the platform's instantaneous draw is sampled. *)
let read s =
  let t = Engine.time s.eng in
  if t - s.last_sample_t >= s.period_ns then begin
    s.last_sample_t <- t;
    s.last_value <- Engine.instant_power s.eng
  end;
  s.last_value

(* True instantaneous power, bypassing the sampling limit (used by tests). *)
let instantaneous s = Engine.instant_power s.eng

let period_ns s = s.period_ns
