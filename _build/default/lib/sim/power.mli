(** A power sensor with a limited sampling rate, modelling the AP7892
    power distribution unit the paper measures with (13 samples/minute).
    The TPC mechanism reads this sensor; its coarse sampling bounds how
    quickly power overshoot can be detected — the source of the transients
    in Figure 8.7. *)

type t

val ap7892_period_ns : int
(** One sample every ~4.6 s: the paper's PDU rate. *)

val create : ?period_ns:int -> Engine.t -> t
(** A sensor over the given engine's platform (default period:
    {!ap7892_period_ns}). *)

val read : t -> float
(** The sensor value in watts: cached unless a full sampling period has
    elapsed since the last fresh sample. *)

val instantaneous : t -> float
(** True instantaneous platform draw, bypassing the sampling limit (for
    tests). *)

val period_ns : t -> int
