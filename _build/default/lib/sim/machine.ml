(* Platform models.  All times are in nanoseconds of virtual time; the two
   presets correspond to the evaluation machines of Table 8.1 of the paper.

   The cost constants are not meant to match the exact microarchitectural
   latencies of the Xeons (which we do not have); they are set to realistic
   orders of magnitude so that the *relative* effects the paper measures --
   synchronization overhead eroding parallel efficiency, context-switch cost
   under oversubscription, negligible monitoring-hook cost -- are present in
   the simulation. *)

type t = {
  name : string;  (** human-readable platform name *)
  cores : int;  (** number of hardware threads *)
  ghz : float;  (** clock speed, used only for power/energy reporting *)
  time_slice : int;  (** OS scheduler quantum, ns *)
  ctx_switch : int;  (** context-switch penalty, ns *)
  chan_op : int;  (** cost of one channel send/recv, ns *)
  lock_op : int;  (** cost of an uncontended lock acquire/release pair, ns *)
  hook : int;  (** cost of one Decima begin/end monitoring hook (rdtsc), ns *)
  idle_power : float;  (** platform power with all cores idle, watts *)
  core_power : float;  (** additional power per busy core, watts *)
}

(* Intel Xeon E5310: 2 sockets x 4 cores, 1.60 GHz, 8 GB (Platform 1). *)
let xeon_e5310 =
  {
    name = "Intel Xeon E5310 (8 threads)";
    cores = 8;
    ghz = 1.60;
    time_slice = 4_000_000;
    ctx_switch = 2_000;
    chan_op = 120;
    lock_op = 80;
    hook = 15;
    idle_power = 180.0;
    core_power = 12.0;
  }

(* Intel Xeon X7460: 4 sockets x 6 cores, 2.66 GHz, 24 GB (Platform 2).
   This is the platform the paper uses for the load-sweep experiments. *)
let xeon_x7460 =
  {
    name = "Intel Xeon X7460 (24 threads)";
    cores = 24;
    ghz = 2.66;
    time_slice = 4_000_000;
    ctx_switch = 2_000;
    chan_op = 100;
    lock_op = 60;
    hook = 12;
    idle_power = 400.0;
    core_power = 18.0;
  }

(* A tiny machine for unit tests: cheap costs, few cores, short slices so
   preemption paths are exercised quickly. *)
let test_machine ?(cores = 4) () =
  {
    name = Printf.sprintf "test machine (%d threads)" cores;
    cores;
    ghz = 1.0;
    time_slice = 10_000;
    ctx_switch = 100;
    chan_op = 10;
    lock_op = 5;
    hook = 1;
    idle_power = 10.0;
    core_power = 1.0;
  }

(* Instantaneous platform power draw with [busy] cores active. *)
let power t ~busy = t.idle_power +. (float_of_int busy *. t.core_power)

(* Peak power: every core busy. *)
let peak_power t = power t ~busy:t.cores

let pp fmt t = Format.fprintf fmt "%s @@ %.2f GHz" t.name t.ghz
