(** SEDA-style thread-pool sizing (Welsh et al.), re-implemented on the
    Parcae API (the paper's Section 6.3.2): each task adjusts its DoP
    locally, adding one thread when its input queue exceeds [threshold],
    up to [max_per_stage].  Control is local and open-loop, so the total
    can exceed the platform budget — the oversubscription the paper
    contrasts with TBF's coordinated allocation (Table 8.5). *)

val make : ?threshold:float -> ?max_per_stage:int -> unit -> Parcae_runtime.Morta.mechanism
