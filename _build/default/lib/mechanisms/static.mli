(** The do-nothing mechanism: the region keeps its launch configuration —
    the behaviour of a conventional Pthreads parallelization and the
    baseline of every comparison in the paper's Chapter 8. *)

val mechanism : Parcae_runtime.Morta.mechanism
