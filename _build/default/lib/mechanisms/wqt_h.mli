(** Work Queue Threshold with Hysteresis (the paper's Section 6.3.1).

    A two-state open-loop controller for "minimize response time with N
    threads": while the master work queue stays below [threshold] for
    [noff] consecutive observations the program runs in the
    latency-optimized configuration ([light]); above it for [non]
    observations, the throughput-optimized configuration ([heavy]).  The
    hysteresis keeps transient bursts from toggling the state. *)

type state = Light | Heavy

val make :
  load:(unit -> float) ->
  threshold:float ->
  ?non:int ->
  ?noff:int ->
  light:Parcae_core.Config.t ->
  heavy:Parcae_core.Config.t ->
  unit ->
  Parcae_runtime.Morta.mechanism
