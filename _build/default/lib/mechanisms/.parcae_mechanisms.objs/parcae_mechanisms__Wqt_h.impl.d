lib/mechanisms/wqt_h.ml: Parcae_core Parcae_runtime
