lib/mechanisms/wq_linear.ml: Array Float Parcae_core Parcae_runtime Parcae_util
