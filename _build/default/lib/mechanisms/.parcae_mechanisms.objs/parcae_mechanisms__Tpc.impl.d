lib/mechanisms/tpc.ml: Array List Parcae_core Parcae_runtime Parcae_sim
