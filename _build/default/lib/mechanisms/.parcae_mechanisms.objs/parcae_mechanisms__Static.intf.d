lib/mechanisms/static.mli: Parcae_runtime
