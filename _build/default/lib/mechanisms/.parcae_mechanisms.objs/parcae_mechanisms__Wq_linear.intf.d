lib/mechanisms/wq_linear.mli: Parcae_core Parcae_runtime
