lib/mechanisms/tbf.ml: Array Float List Parcae_core Parcae_runtime
