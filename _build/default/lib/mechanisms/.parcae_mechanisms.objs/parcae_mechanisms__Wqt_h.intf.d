lib/mechanisms/wqt_h.mli: Parcae_core Parcae_runtime
