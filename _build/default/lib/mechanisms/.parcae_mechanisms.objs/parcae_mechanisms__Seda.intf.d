lib/mechanisms/seda.mli: Parcae_runtime
