lib/mechanisms/seda.ml: Array Parcae_core Parcae_runtime
