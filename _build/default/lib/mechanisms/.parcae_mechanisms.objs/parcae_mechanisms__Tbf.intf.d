lib/mechanisms/tbf.mli: Parcae_core Parcae_runtime
