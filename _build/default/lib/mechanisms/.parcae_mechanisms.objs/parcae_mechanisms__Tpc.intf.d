lib/mechanisms/tpc.mli: Parcae_runtime Parcae_sim
