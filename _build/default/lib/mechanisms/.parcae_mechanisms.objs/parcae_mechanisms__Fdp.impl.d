lib/mechanisms/fdp.ml: Array Hashtbl List Parcae_core Parcae_runtime
