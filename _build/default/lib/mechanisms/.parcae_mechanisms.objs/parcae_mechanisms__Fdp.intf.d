lib/mechanisms/fdp.mli: Parcae_runtime
