lib/mechanisms/static.ml: Parcae_runtime
