(** Throughput-Power Controller (the paper's Section 6.3.3): maximize
    throughput with N threads under a power target.

    Closed-loop in both throughput and power: ramp the limiter task's DoP
    while under the target; on overshoot, back off and explore
    redistributions of the same total DoP, keeping the best-throughput
    configuration within budget (the exploration transient of Figure 8.7);
    then hold stable, shedding a thread on any later overshoot.  The
    control rate is bounded by the power sensor's sampling period. *)

val make :
  sensor:Parcae_sim.Power.t -> target_watts:float -> unit -> Parcae_runtime.Morta.mechanism
