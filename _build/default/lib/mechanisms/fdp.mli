(** Feedback-Directed Pipelining (Suleman et al.), re-implemented on the
    Parcae API (the paper's Section 6.3.2).

    Proportional closed-loop control: starting from one thread per task,
    repeatedly grant a thread to the LIMITER (the parallel task with the
    lowest service capacity dop / exec_time), judge the grant on a clean
    measurement window, keep it if throughput did not regress and
    otherwise revert and try the next limiter; converge when no candidate
    improves.  When no free threads remain, reclaim one from the
    highest-capacity task. *)

val make : ?tolerance:float -> ?max_flat:int -> unit -> Parcae_runtime.Morta.mechanism
(** [tolerance] is the regression threshold for reverting a grant
    (default 0.98); [max_flat] bounds consecutive non-improving probes
    before convergence (default 8). *)
