(* The do-nothing mechanism: the region keeps the configuration it was
   launched with.  This is the behaviour of a conventional Pthreads
   parallelization and the baseline of every comparison in Chapter 8. *)

let mechanism : Parcae_runtime.Morta.mechanism = fun _region -> None
