(** Throughput Balance with Fusion (the paper's Section 6.3.2), the best
    mechanism for "maximize throughput with N threads" (Table 8.5).

    Assigns each parallel task a DoP proportional to its measured
    per-instance execution time under the global constraint sum(dP) <= N
    (the allocation of Figure 5.9).  If the per-stage execution times are
    badly unbalanced, switches the region to the registered *fused* scheme
    in which the parallel stages are collapsed into a single parallel task
    (Figure 6.2(b)), avoiding the inefficiency of an unbalanced pipeline
    and the inter-stage channel hops. *)

val proportional_dops :
  Parcae_core.Task.par_descriptor -> Parcae_runtime.Decima.t -> int -> int array
(** DoP vector proportional to per-task execution times over [navail]
    threads (sequential tasks stay at 1). *)

val imbalance_of : Parcae_core.Task.par_descriptor -> Parcae_runtime.Decima.t -> float
(** (max - min) / max of per-stage execution times across parallel tasks;
    0 when balanced. *)

val make :
  ?fused_choice:int ->
  ?imbalance:float ->
  ?warmup:int ->
  unit ->
  Parcae_runtime.Morta.mechanism
(** [fused_choice] is the scheme index with collapsed stages; [imbalance]
    the fusion trigger (default 0.5); [warmup] the instances required per
    task before acting (default 30). *)
