(** Work Queue Linear (the paper's Section 6.3.1).

    Degrades the latency-oriented degree of parallelism continuously with
    load: dP = max(dPmin, dPmax - k * WQo) with k = (dPmax - dPmin) / Qmax
    (Equations 6.1/6.2), where WQo is the work-queue occupancy and Qmax is
    derived from the acceptable response-time degradation. *)

val dop_of_load : dpmin:int -> dpmax:int -> qmax:float -> float -> int
(** Equation 6.1 on a single occupancy reading. *)

val nested :
  ?smooth:float ->
  load:(unit -> float) ->
  dpmin:int ->
  dpmax:int ->
  qmax:float ->
  make_config:(int -> Parcae_core.Config.t) ->
  unit ->
  Parcae_runtime.Morta.mechanism
(** The two-level loop-nest form (transcoding-style servers): dP is the
    inner DoP; [make_config] maps it to a full configuration (outer DoP
    typically budget / dP).  Occupancy is EWMA-smoothed ([smooth]) so
    queue noise doesn't cause reconfiguration thrash. *)

val per_task :
  loads:(unit -> float) option array ->
  ?per_item:float ->
  ?smooth:float ->
  ?deadband:int ->
  dpmin:int ->
  dpmax:int ->
  unit ->
  Parcae_runtime.Morta.mechanism
(** The flat-pipeline form (ferret, Figure 8.5): each parallel stage's DoP
    is sized from its own input-queue occupancy — threads proportional to
    the load on each task.  A stage only moves when the target differs
    from the current DoP by at least [deadband]. *)
