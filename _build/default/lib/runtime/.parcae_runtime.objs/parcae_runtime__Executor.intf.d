lib/runtime/executor.mli: Parcae_core Parcae_sim Region
