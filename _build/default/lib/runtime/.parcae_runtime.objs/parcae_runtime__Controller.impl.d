lib/runtime/controller.ml: Array Decima Executor Float Hashtbl List Option Parcae_core Parcae_sim Parcae_util Region
