lib/runtime/region.mli: Decima Parcae_core Parcae_sim
