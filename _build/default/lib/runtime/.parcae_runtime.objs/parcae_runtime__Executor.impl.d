lib/runtime/executor.ml: Array Decima List Option Parcae_core Parcae_sim Printf Region
