lib/runtime/controller.mli: Parcae_sim Parcae_util Region
