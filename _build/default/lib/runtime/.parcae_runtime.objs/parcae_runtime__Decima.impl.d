lib/runtime/decima.ml: Array Hashtbl Parcae_sim Parcae_util
