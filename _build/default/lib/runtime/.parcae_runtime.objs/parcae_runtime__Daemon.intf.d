lib/runtime/daemon.mli: Controller Parcae_sim Region
