lib/runtime/decima.mli: Parcae_sim
