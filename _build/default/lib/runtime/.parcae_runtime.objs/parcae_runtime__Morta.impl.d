lib/runtime/morta.ml: Executor Parcae_core Parcae_sim Region
