lib/runtime/morta.mli: Parcae_core Parcae_sim Region
