lib/runtime/region.ml: Decima List Parcae_core Parcae_sim
