lib/runtime/daemon.ml: Controller List Parcae_sim Region
