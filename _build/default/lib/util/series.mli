(** Append-only time series of [(time, value)] samples, used for the
    throughput/power/state timelines the figure printers render. *)

type t

val create : string -> t
val name : t -> string
val length : t -> int

val add : t -> time:float -> value:float -> unit
(** Append a sample (amortized O(1)). *)

val get : t -> int -> float * float
(** [get t i] is the i-th sample.
    @raise Invalid_argument if out of bounds. *)

val times : t -> float array
val values : t -> float array

val iter : t -> (float -> float -> unit) -> unit
(** [iter t f] applies [f time value] to every sample in order. *)

val last : t -> (float * float) option

val mean_in : t -> t0:float -> t1:float -> float option
(** Mean of the values with timestamps in [\[t0, t1)]; [None] if empty. *)

val bucketed : t -> t0:float -> t1:float -> buckets:int -> (float * float) array
(** Downsample into equal-width time buckets, averaging per bucket; empty
    buckets repeat the previous bucket's value so plotted series stay
    continuous.  Each result pair is (bucket midpoint, mean value). *)
