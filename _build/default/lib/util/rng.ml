(* Deterministic pseudo-random number generation for reproducible
   simulations.  The generator is splitmix64: a tiny, fast, statistically
   solid 64-bit generator that supports cheap splitting, which we use to give
   every simulated entity (load generator, per-task jitter, ...) an
   independent stream derived from one experiment seed. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* Core splitmix64 step: advance the state and scramble it into an output. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Derive an independent stream.  Mixing the parent's next output into a new
   state is the standard splitmix splitting construction. *)
let split t = { state = next_int64 t }

(* Uniform float in [0, 1).  Uses the top 53 bits so the result is an exactly
   representable dyadic rational. *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

(* Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's native non-negative int range. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Exponentially distributed draw with the given [rate] (mean 1/rate); used
   for Poisson inter-arrival times in the load generator. *)
let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate must be positive";
  let u = float t in
  (* 1 - u is in (0, 1], so log is finite. *)
  -.log (1.0 -. u) /. rate

(* Gaussian draw via Box-Muller; used for per-iteration work-time jitter. *)
let gaussian t ~mu ~sigma =
  let u1 = float t and u2 = float t in
  let u1 = if u1 < 1e-300 then 1e-300 else u1 in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

(* Uniform float in [lo, hi). *)
let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

(* Fisher-Yates shuffle of an array, in place. *)
let shuffle t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
