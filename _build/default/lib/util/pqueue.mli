(** Binary min-heap priority queue with deterministic tie-breaking.

    Entries with equal keys pop in insertion order, which makes the
    discrete-event simulator built on top of it fully deterministic. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> int -> 'a -> unit
(** [push q key payload] inserts with priority [key]; ties resolve in
    insertion order. *)

val peek_key : 'a t -> int option
(** Smallest key currently in the queue. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum entry as [(key, payload)]. *)

val clear : 'a t -> unit
