(* Append-only time series of [(time, value)] samples.  Decima and the
   benchmark harness use these to record throughput/power/DoP timelines, and
   the figure printers downsample them into the rows the paper plots. *)

type t = {
  name : string;
  mutable times : float array;
  mutable values : float array;
  mutable len : int;
}

let create name = { name; times = [||]; values = [||]; len = 0 }

let name t = t.name
let length t = t.len

let add t ~time ~value =
  let cap = Array.length t.times in
  if t.len = cap then begin
    let ncap = if cap = 0 then 64 else cap * 2 in
    let ntimes = Array.make ncap 0.0 and nvalues = Array.make ncap 0.0 in
    Array.blit t.times 0 ntimes 0 t.len;
    Array.blit t.values 0 nvalues 0 t.len;
    t.times <- ntimes;
    t.values <- nvalues
  end;
  t.times.(t.len) <- time;
  t.values.(t.len) <- value;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Series.get: index out of bounds";
  (t.times.(i), t.values.(i))

let times t = Array.sub t.times 0 t.len
let values t = Array.sub t.values 0 t.len

let iter t f =
  for i = 0 to t.len - 1 do
    f t.times.(i) t.values.(i)
  done

let last t = if t.len = 0 then None else Some (t.times.(t.len - 1), t.values.(t.len - 1))

(* Mean of the values whose timestamps fall in [t0, t1). *)
let mean_in t ~t0 ~t1 =
  let sum = ref 0.0 and n = ref 0 in
  iter t (fun time v ->
      if time >= t0 && time < t1 then begin
        sum := !sum +. v;
        incr n
      end);
  if !n = 0 then None else Some (!sum /. float_of_int !n)

(* Downsample into [buckets] equal-width time buckets over [t0, t1],
   averaging the values in each bucket.  Buckets with no samples repeat the
   previous bucket's value so plotted series stay continuous. *)
let bucketed t ~t0 ~t1 ~buckets =
  if buckets <= 0 then invalid_arg "Series.bucketed: buckets must be positive";
  let width = (t1 -. t0) /. float_of_int buckets in
  let sums = Array.make buckets 0.0 and counts = Array.make buckets 0 in
  iter t (fun time v ->
      if time >= t0 && time < t1 then begin
        let b = int_of_float ((time -. t0) /. width) in
        let b = if b >= buckets then buckets - 1 else b in
        sums.(b) <- sums.(b) +. v;
        counts.(b) <- counts.(b) + 1
      end);
  let out = Array.make buckets (t0, 0.0) in
  let prev = ref 0.0 in
  for b = 0 to buckets - 1 do
    let v = if counts.(b) > 0 then sums.(b) /. float_of_int counts.(b) else !prev in
    prev := v;
    out.(b) <- (t0 +. ((float_of_int b +. 0.5) *. width), v)
  done;
  out
