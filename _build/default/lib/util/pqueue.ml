(* Binary min-heap priority queue keyed by [(int, int)] pairs: primary key is
   the event time, secondary key a monotonically increasing sequence number.
   The sequence number makes the discrete-event simulator fully
   deterministic: two events at the same virtual time are processed in
   insertion order. *)

type 'a entry = { key : int; seq : int; payload : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let length t = t.size
let is_empty t = t.size = 0

let lt a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow t =
  let cap = Array.length t.data in
  let ncap = if cap = 0 then 16 else cap * 2 in
  (* The dummy payload slot is immediately overwritten before first read. *)
  let ndata = Array.make ncap t.data.(0) in
  Array.blit t.data 0 ndata 0 t.size;
  t.data <- ndata

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && lt t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.size && lt t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

(* Insert [payload] with priority [key]; ties resolve in insertion order. *)
let push t key payload =
  let entry = { key; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  if t.size = 0 && Array.length t.data = 0 then t.data <- Array.make 16 entry;
  if t.size = Array.length t.data then grow t;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek_key t = if t.size = 0 then None else Some t.data.(0).key

(* Remove and return the minimum entry as [(key, payload)]. *)
let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some (top.key, top.payload)
  end

let clear t = t.size <- 0
