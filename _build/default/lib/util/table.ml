(* Plain-text table rendering for the benchmark harness.  Every table and
   figure in EXPERIMENTS.md is printed through this module so the output has
   one consistent, diffable format. *)

type align = Left | Right

type t = {
  title : string;
  header : string list;
  mutable rows : string list list;  (* stored reversed *)
}

let create ~title ~header = { title; header; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let add_rowf t fmt = Format.kasprintf (fun s -> add_row t (String.split_on_char '|' s)) fmt

let float_cell ?(digits = 3) v =
  if Float.is_integer v && Float.abs v < 1e15 && digits = 0 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.*f" digits v

let render t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let buf = Buffer.create 1024 in
  let pad align width s =
    let n = width - String.length s in
    let fill = String.make (max 0 n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let sep =
    "+" ^ String.concat "+" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths)) ^ "+"
  in
  let render_row row =
    let cells =
      List.mapi
        (fun i cell ->
          (* Right-align cells that parse as numbers, so columns of figures
             line up; left-align labels. *)
          let align =
            match float_of_string_opt (String.trim cell) with
            | Some _ -> Right
            | None -> Left
          in
          " " ^ pad align widths.(i) cell ^ " ")
        row
    in
    let missing = ncols - List.length row in
    let cells = cells @ List.init missing (fun j -> " " ^ String.make widths.(List.length row + j) ' ' ^ " ") in
    "|" ^ String.concat "|" cells ^ "|"
  in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (sep ^ "\n");
  Buffer.add_string buf (render_row t.header ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (render_row r ^ "\n")) rows;
  Buffer.add_string buf (sep ^ "\n");
  Buffer.contents buf

let print t = print_string (render t)
