lib/util/stats.mli:
