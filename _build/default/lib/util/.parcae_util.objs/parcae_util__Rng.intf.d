lib/util/rng.mli:
