lib/util/series.mli:
