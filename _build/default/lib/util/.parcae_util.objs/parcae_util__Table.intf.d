lib/util/table.mli: Format
