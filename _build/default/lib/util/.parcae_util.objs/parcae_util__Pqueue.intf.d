lib/util/pqueue.mli:
