lib/util/series.ml: Array
