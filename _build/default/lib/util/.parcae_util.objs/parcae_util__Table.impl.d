lib/util/table.ml: Array Buffer Float Format List Printf String
