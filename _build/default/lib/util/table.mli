(** Plain-text table rendering for the benchmark harness: one consistent,
    diffable format for every table and figure. *)

type align = Left | Right

type t

val create : title:string -> header:string list -> t

val add_row : t -> string list -> unit
(** Append a row (cells as strings). *)

val add_rowf : t -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Append a row given as a ['|']-separated formatted string. *)

val float_cell : ?digits:int -> float -> string
(** Render a float cell with the given precision (default 3). *)

val render : t -> string
(** The table as a string: title, ruled header, rows.  Numeric-looking
    cells are right-aligned, labels left-aligned. *)

val print : t -> unit
(** [print t] writes {!render} to stdout. *)
