(** Deterministic pseudo-random number generation (splitmix64).

    Every simulated entity that needs randomness derives an independent
    stream from one experiment seed via {!split}, which keeps whole
    simulations reproducible. *)

type t
(** A generator; mutable state, not thread-safe (simulated threads are
    cooperative, so this is fine). *)

val create : int -> t
(** [create seed] makes a generator with the given seed. *)

val copy : t -> t
(** Duplicate the generator state. *)

val split : t -> t
(** [split t] advances [t] and returns an independent generator derived
    from it (the splitmix splitting construction). *)

val float : t -> float
(** Uniform draw in [\[0, 1)]. *)

val int : t -> int -> int
(** [int t bound] is a uniform draw in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> bool
(** Fair coin. *)

val exponential : t -> rate:float -> float
(** Exponentially distributed draw with the given [rate] (mean [1/rate]);
    used for Poisson inter-arrival times.
    @raise Invalid_argument if [rate <= 0]. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal draw via Box-Muller. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform draw in [\[lo, hi)]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
