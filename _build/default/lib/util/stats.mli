(** Descriptive statistics over float samples, plus the moving-average
    estimators Decima uses for task throughput and execution time. *)

val mean : float array -> float
(** Arithmetic mean; 0 for an empty sample. *)

val variance : float array -> float
(** Unbiased sample variance; 0 for fewer than two samples. *)

val stddev : float array -> float
(** Square root of {!variance}. *)

val percentile : float -> float array -> float
(** [percentile p xs] for [p] in [\[0, 100\]], by linear interpolation
    between closest ranks.  Does not mutate its argument.
    @raise Invalid_argument on an empty sample or out-of-range [p]. *)

val median : float array -> float
(** [percentile 50.0]. *)

val min_max : float array -> float * float
(** Smallest and largest sample.
    @raise Invalid_argument on an empty sample. *)

val geomean : float array -> float
(** Geometric mean; 0 for an empty sample. *)

(** Exponentially-weighted moving average: O(1) state, responsive to
    workload change. *)
module Ewma : sig
  type t

  val create : alpha:float -> t
  (** [alpha] in (0, 1]: weight of the newest observation. *)

  val observe : t -> float -> unit
  (** Fold in an observation; the first observation is taken as-is. *)

  val value : t -> float
  (** Current estimate (0 before any observation). *)

  val primed : t -> bool
  (** Whether at least one observation has been folded in. *)

  val reset : t -> unit
end

(** Mean over a sliding window of the last [capacity] observations. *)
module Window : sig
  type t

  val create : int -> t
  (** @raise Invalid_argument if the capacity is not positive. *)

  val observe : t -> float -> unit
  val mean : t -> float
  val count : t -> int
  val reset : t -> unit
end
