(** Parallelism configurations.

    A configuration C = (S, D) assigns each loop a parallelization scheme
    and a degree of parallelism (the paper's Chapter 2).  Because a task
    can carry nested ParDescriptors, a configuration is a tree mirroring
    the descriptor tree. *)

type task_config = {
  dop : int;  (** number of worker threads executing the task *)
  nested : t option;
      (** [None]: nested parallelism runs inline, sequentially;
          [Some cfg]: each instance launches the chosen nested descriptor
          under [cfg]. *)
}

and t = {
  choice : int;  (** index of the chosen ParDescriptor among alternatives *)
  tasks : task_config array;  (** one entry per task of the descriptor *)
}

val seq_task : task_config
(** DoP 1, no nested parallelism. *)

val task : ?nested:t -> int -> task_config
val make : ?choice:int -> task_config list -> t

val threads : t -> int
(** Hardware threads the configuration keeps busy; a task whose instances
    each launch a nested team of [k] threads accounts for [dop * k] (the
    paper's k x l). *)

val task_threads : task_config -> int

val dops : t -> int array
(** Degree-of-parallelism vector of the top-level tasks. *)

val with_dop : t -> int -> int -> t
(** [with_dop cfg i d] is [cfg] with task [i]'s DoP replaced by [d]. *)

val with_nested : t -> int -> t option -> t

val equal : t -> t -> bool
val task_equal : task_config -> task_config -> bool

val pp : Format.formatter -> t -> unit
val pp_task : Format.formatter -> task_config -> unit
val to_string : t -> string

val validate : t -> unit
(** Basic well-formedness (positive DoPs, recursively).
    @raise Invalid_argument otherwise. *)
