(* Parallelism configurations.

   A configuration C = (S, D) assigns each loop a parallelization scheme and
   a degree of parallelism (Chapter 2).  Because the Parcae API lets a task
   carry nested ParDescriptors (Section 5.1.1), a configuration is a tree
   that mirrors the descriptor tree: each task gets a DoP, and a task with
   nested parallelism either runs its body inline (sequential inner loop) or
   delegates to one of its nested descriptors with a configuration of its
   own. *)

type task_config = {
  dop : int;  (** number of worker threads executing the task *)
  nested : t option;
      (** [None]: any nested parallelism runs inline, sequentially.
          [Some cfg]: each instance launches the chosen nested descriptor. *)
}

and t = {
  choice : int;  (** index of the chosen ParDescriptor among alternatives *)
  tasks : task_config array;  (** one entry per task of the chosen descriptor *)
}

(* A sequential task configuration. *)
let seq_task = { dop = 1; nested = None }

let task ?nested dop = { dop; nested }

let make ?(choice = 0) tasks = { choice; tasks = Array.of_list tasks }

(* Number of hardware threads the configuration keeps busy.  A task whose
   instances each launch a nested team of [k] threads keeps [dop * k]
   threads busy: the outer worker blocks in [Task::wait] while its inner
   team runs, so it is not counted separately (Section 2.3's k x l). *)
let rec threads cfg = Array.fold_left (fun acc tc -> acc + task_threads tc) 0 cfg.tasks

and task_threads tc =
  match tc.nested with None -> tc.dop | Some inner -> tc.dop * threads inner

(* Degree-of-parallelism vector of the top-level tasks. *)
let dops cfg = Array.map (fun tc -> tc.dop) cfg.tasks

(* Rebuild [cfg] with task [i]'s DoP replaced. *)
let with_dop cfg i dop =
  let tasks = Array.copy cfg.tasks in
  tasks.(i) <- { (tasks.(i)) with dop };
  { cfg with tasks }

(* Rebuild [cfg] with task [i]'s nested configuration replaced. *)
let with_nested cfg i nested =
  let tasks = Array.copy cfg.tasks in
  tasks.(i) <- { (tasks.(i)) with nested };
  { cfg with tasks }

let rec equal a b =
  a.choice = b.choice
  && Array.length a.tasks = Array.length b.tasks
  && Array.for_all2 task_equal a.tasks b.tasks

and task_equal a b =
  a.dop = b.dop
  &&
  match (a.nested, b.nested) with
  | None, None -> true
  | Some x, Some y -> equal x y
  | _ -> false

let rec pp fmt cfg =
  Format.fprintf fmt "#%d<" cfg.choice;
  Array.iteri
    (fun i tc ->
      if i > 0 then Format.fprintf fmt ", ";
      pp_task fmt tc)
    cfg.tasks;
  Format.fprintf fmt ">"

and pp_task fmt tc =
  match tc.nested with
  | None -> Format.fprintf fmt "%d" tc.dop
  | Some inner -> Format.fprintf fmt "%d*%a" tc.dop pp inner

let to_string cfg = Format.asprintf "%a" pp cfg

(* Basic well-formedness: positive DoPs, nested configurations well-formed. *)
let rec validate cfg =
  Array.iter
    (fun tc ->
      if tc.dop < 1 then invalid_arg "Config.validate: dop must be >= 1";
      Option.iter validate tc.nested)
    cfg.tasks
