(* Status returned by a task functor after each dynamic instance
   (Figure 5.1: task_iterating | task_paused | task_complete).

   [Iterating] means the loop should continue; [Paused] means the task
   acknowledged a reconfiguration signal and has reached a consistent state;
   [Complete] means the loop exit branch was taken. *)

type t = Iterating | Paused | Complete

let to_string = function
  | Iterating -> "task_iterating"
  | Paused -> "task_paused"
  | Complete -> "task_complete"

let pp fmt t = Format.pp_print_string fmt (to_string t)

let equal (a : t) (b : t) = a = b
