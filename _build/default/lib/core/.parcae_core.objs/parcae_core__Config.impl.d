lib/core/config.ml: Array Format Option
