lib/core/task_status.ml: Format
