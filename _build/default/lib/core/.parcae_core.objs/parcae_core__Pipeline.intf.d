lib/core/pipeline.mli: Parcae_sim Task Task_status
