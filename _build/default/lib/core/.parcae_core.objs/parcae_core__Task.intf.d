lib/core/task.mli: Config Task_status
