lib/core/task.ml: Array Config List Printf Task_status
