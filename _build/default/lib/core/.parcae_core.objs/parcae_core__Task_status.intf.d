lib/core/task_status.mli: Format
