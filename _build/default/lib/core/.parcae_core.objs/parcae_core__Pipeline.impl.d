lib/core/pipeline.ml: List Parcae_sim Task Task_status
