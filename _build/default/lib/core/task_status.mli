(** Status returned by a task functor after each dynamic instance
    (Figure 5.1 of the paper: task_iterating | task_paused |
    task_complete). *)

type t =
  | Iterating  (** continue the loop *)
  | Paused  (** acknowledged a reconfiguration signal; state is consistent *)
  | Complete  (** the loop exit branch was taken *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
