test/test_mechanisms.ml: Alcotest Array Config Decima Engine Executor List Machine Parcae_core Parcae_mechanisms Parcae_runtime Parcae_sim Task Task_status
