test/main.mli:
