test/test_controller.ml: Alcotest Array Compiler Engine Flex Interp Kernels List Machine Option Parcae_core Parcae_ir Parcae_nona Parcae_runtime Parcae_sim Parcae_util Printf
