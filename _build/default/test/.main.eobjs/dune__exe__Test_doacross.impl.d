test/test_doacross.ml: Alcotest Array Compiler Doacross Engine Flex Instr Kernels List Loop Machine Parcae_ir Parcae_nona Parcae_pdg Parcae_runtime Parcae_sim Pdg Printf
