test/test_parser.ml: Alcotest Array Builder Compiler Engine Filename Instr Interp Kernels List Loop Machine Option Parcae_ir Parcae_nona Parcae_runtime Parcae_sim Parser Printf String Sys
