test/test_util.ml: Alcotest Array List Parcae_util Pqueue Printf QCheck QCheck_alcotest Rng Series Stats String Table
