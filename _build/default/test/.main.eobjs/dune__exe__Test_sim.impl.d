test/test_sim.ml: Alcotest Barrier Buffer Chan Engine List Lock Machine Parcae_sim Power Printf
