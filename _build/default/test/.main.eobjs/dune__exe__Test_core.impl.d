test/test_core.ml: Alcotest Chan Config Engine Machine Parcae_core Parcae_sim Pipeline Task Task_status
