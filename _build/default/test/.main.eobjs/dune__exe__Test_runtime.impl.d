test/test_runtime.ml: Alcotest Array Chan Config Decima Engine Executor List Lock Machine Parcae_core Parcae_runtime Parcae_sim Pipeline Region Task Task_status
