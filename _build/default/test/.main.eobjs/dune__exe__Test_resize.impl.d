test/test_resize.ml: Alcotest Compiler Engine Flex Kernels List Machine Parcae_core Parcae_ir Parcae_nona Parcae_runtime Parcae_sim
