test/test_workloads.ml: Alcotest App Dedup Experiments Ferret Machine Option Parcae_mechanisms Parcae_sim Parcae_workloads Printf Transcode
